// Package journal provides an append-only event log for the recommender: a
// durable record of every state-changing API call (users, follows, ads,
// campaigns, posts, check-ins, impressions), replayable into a fresh engine
// at startup. It complements caar.Snapshot: a snapshot captures durable
// state compactly, the journal additionally recovers the ephemeral feed
// context by replaying recent events.
//
// Format: one JSON object per line, each with a type tag, so the log is
// greppable and append-crash-tolerant (a torn final line is detected and
// ignored during replay).
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	caar "caar"
)

// Op is the type tag of a journal entry.
type Op string

// Journal operations.
const (
	OpAddUser     Op = "add_user"
	OpFollow      Op = "follow"
	OpUnfollow    Op = "unfollow"
	OpAddCampaign Op = "add_campaign"
	OpAddAd       Op = "add_ad"
	OpRemoveAd    Op = "remove_ad"
	OpPost        Op = "post"
	OpCheckIn     Op = "check_in"
	OpImpression  Op = "impression"
)

// Entry is one journaled event. Exactly the fields relevant to Op are set.
type Entry struct {
	Op Op        `json:"op"`
	At time.Time `json:"at,omitempty"`

	User     string  `json:"user,omitempty"`
	Followee string  `json:"followee,omitempty"`
	Text     string  `json:"text,omitempty"`
	Lat      float64 `json:"lat,omitempty"`
	Lng      float64 `json:"lng,omitempty"`

	Campaign *CampaignEntry `json:"campaign,omitempty"`
	Ad       *caar.Ad       `json:"ad,omitempty"`
	AdID     string         `json:"ad_id,omitempty"`
}

// CampaignEntry records an AddCampaign call.
type CampaignEntry struct {
	Name   string    `json:"name"`
	Budget float64   `json:"budget"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
}

// Writer appends entries to a log. Safe for concurrent use; each entry is
// written atomically with respect to other writers on the same Writer.
type Writer struct {
	mu  sync.Mutex
	out *bufio.Writer
	// Sync, when non-nil, is called after every append (e.g. os.File.Sync
	// for durability; tests leave it nil).
	Sync func() error
}

// NewWriter wraps w in a journal writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{out: bufio.NewWriter(w)}
}

// Append writes one entry and flushes it.
func (w *Writer) Append(e Entry) error {
	if e.Op == "" {
		return errors.New("journal: entry without op")
	}
	buf, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.out.Write(append(buf, '\n')); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := w.out.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	if w.Sync != nil {
		if err := w.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	return nil
}

// ReplayStats summarizes one replay.
type ReplayStats struct {
	Applied int  // entries applied successfully
	Skipped int  // entries that failed to apply (logged state conflicts)
	Torn    bool // the final line was incomplete (crash during append)
}

// Replay applies a journal to an engine. Entries that fail to apply (e.g. a
// duplicate user after a partial previous replay) are counted and skipped
// rather than aborting, so replay is idempotent-ish over crash-recovered
// logs; a malformed non-final line aborts with an error.
func Replay(r io.Reader, eng *caar.Engine) (ReplayStats, error) {
	var stats ReplayStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var pending []byte
	for sc.Scan() {
		if pending != nil {
			// The previous line failed to parse but was not final: corrupt.
			return stats, fmt.Errorf("journal: corrupt entry: %s", truncate(pending))
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			// Possibly a torn final line; decide once we know whether more
			// lines follow.
			pending = append([]byte(nil), line...)
			continue
		}
		if err := apply(eng, e); err != nil {
			stats.Skipped++
			continue
		}
		stats.Applied++
	}
	if err := sc.Err(); err != nil {
		return stats, fmt.Errorf("journal: read: %w", err)
	}
	if pending != nil {
		stats.Torn = true
	}
	return stats, nil
}

func truncate(b []byte) string {
	const max = 80
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}

func apply(eng *caar.Engine, e Entry) error {
	switch e.Op {
	case OpAddUser:
		return eng.AddUser(e.User)
	case OpFollow:
		return eng.Follow(e.User, e.Followee)
	case OpUnfollow:
		return eng.Unfollow(e.User, e.Followee)
	case OpAddCampaign:
		if e.Campaign == nil {
			return errors.New("journal: add_campaign without payload")
		}
		c := e.Campaign
		return eng.AddCampaign(c.Name, c.Budget, c.Start, c.End)
	case OpAddAd:
		if e.Ad == nil {
			return errors.New("journal: add_ad without payload")
		}
		return eng.AddAd(*e.Ad)
	case OpRemoveAd:
		return eng.RemoveAd(e.AdID)
	case OpPost:
		return eng.Post(e.User, e.Text, e.At)
	case OpCheckIn:
		return eng.CheckIn(e.User, e.Lat, e.Lng, e.At)
	case OpImpression:
		if e.User != "" {
			_, err := eng.RecordImpressionTo(e.User, e.AdID, e.At)
			return err
		}
		_, err := eng.ServeImpression(e.AdID, e.At)
		return err
	default:
		return fmt.Errorf("journal: unknown op %q", e.Op)
	}
}

// Logged wraps an engine so every successful state change is appended to a
// journal. Reads (Recommend, Stats) pass through untouched via the embedded
// engine.
type Logged struct {
	*caar.Engine
	w *Writer
}

// NewLogged pairs an engine with a journal writer.
func NewLogged(eng *caar.Engine, w *Writer) *Logged {
	return &Logged{Engine: eng, w: w}
}

// AddUser journals and applies.
func (l *Logged) AddUser(handle string) error {
	if err := l.Engine.AddUser(handle); err != nil {
		return err
	}
	return l.w.Append(Entry{Op: OpAddUser, User: handle})
}

// Follow journals and applies.
func (l *Logged) Follow(follower, followee string) error {
	if err := l.Engine.Follow(follower, followee); err != nil {
		return err
	}
	return l.w.Append(Entry{Op: OpFollow, User: follower, Followee: followee})
}

// Unfollow journals and applies.
func (l *Logged) Unfollow(follower, followee string) error {
	if err := l.Engine.Unfollow(follower, followee); err != nil {
		return err
	}
	return l.w.Append(Entry{Op: OpUnfollow, User: follower, Followee: followee})
}

// AddCampaign journals and applies.
func (l *Logged) AddCampaign(name string, budget float64, start, end time.Time) error {
	if err := l.Engine.AddCampaign(name, budget, start, end); err != nil {
		return err
	}
	return l.w.Append(Entry{Op: OpAddCampaign, Campaign: &CampaignEntry{
		Name: name, Budget: budget, Start: start, End: end,
	}})
}

// AddAd journals and applies.
func (l *Logged) AddAd(ad caar.Ad) error {
	if err := l.Engine.AddAd(ad); err != nil {
		return err
	}
	return l.w.Append(Entry{Op: OpAddAd, Ad: &ad})
}

// RemoveAd journals and applies.
func (l *Logged) RemoveAd(id string) error {
	if err := l.Engine.RemoveAd(id); err != nil {
		return err
	}
	return l.w.Append(Entry{Op: OpRemoveAd, AdID: id})
}

// Post journals and applies.
func (l *Logged) Post(author, text string, at time.Time) error {
	if err := l.Engine.Post(author, text, at); err != nil {
		return err
	}
	return l.w.Append(Entry{Op: OpPost, User: author, Text: text, At: at})
}

// CheckIn journals and applies.
func (l *Logged) CheckIn(user string, lat, lng float64, at time.Time) error {
	if err := l.Engine.CheckIn(user, lat, lng, at); err != nil {
		return err
	}
	return l.w.Append(Entry{Op: OpCheckIn, User: user, Lat: lat, Lng: lng, At: at})
}

// ServeImpression journals (when billable) and applies.
func (l *Logged) ServeImpression(adID string, at time.Time) (bool, error) {
	served, err := l.Engine.ServeImpression(adID, at)
	if err != nil || !served {
		return served, err
	}
	return served, l.w.Append(Entry{Op: OpImpression, AdID: adID, At: at})
}

// RecordImpressionTo journals (when billable) and applies a per-user
// impression, preserving frequency-capping state across recovery.
func (l *Logged) RecordImpressionTo(user, adID string, at time.Time) (bool, error) {
	served, err := l.Engine.RecordImpressionTo(user, adID, at)
	if err != nil || !served {
		return served, err
	}
	return served, l.w.Append(Entry{Op: OpImpression, User: user, AdID: adID, At: at})
}
