// Package journal provides an append-only event log for the recommender: a
// durable record of every state-changing API call (users, follows, ads,
// campaigns, posts, check-ins, impressions), replayable into a fresh engine
// at startup. It complements caar.Snapshot: a snapshot captures durable
// state compactly, the journal additionally recovers the ephemeral feed
// context by replaying recent events.
//
// Format: one framed record per line —
//
//	j2 <payload-len> <crc32c-hex> <payload-json>\n
//
// The CRC32C checksum (Castagnoli) covers the JSON payload, so torn writes
// and bit flips are detected rather than silently replayed. The log stays
// line-oriented and greppable. Replay also accepts the legacy v1 format
// (bare JSON object per line), so logs written before framing existed keep
// replaying.
//
// Durability is configurable per Writer: fsync after every append
// (SyncAlways), at most once per interval (SyncInterval), or never
// (SyncNever, leaving durability to the OS page cache).
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	caar "caar"
	"caar/internal/faultinject"
)

// Crash points consulted on the journal's durability paths. Disarmed (the
// default) each is one atomic load; the soak harness arms them via
// faultinject.ArmCrashPoints to kill the process at exactly these
// instructions and prove recovery holds.
const (
	// CrashPreFsync fires after an appended record is flushed to the OS but
	// before it is fsynced — the record may or may not survive, and the
	// client never got an acknowledgment.
	CrashPreFsync = "journal.pre-fsync"
	// CrashMidReplay fires mid-batch during replay (arm with a count, e.g.
	// "journal.mid-replay:100", to die after the 100th record) — recovery
	// must be restartable from an interrupted recovery.
	CrashMidReplay = "journal.mid-replay"
)

// Op is the type tag of a journal entry.
type Op string

// Journal operations.
const (
	OpAddUser     Op = "add_user"
	OpFollow      Op = "follow"
	OpUnfollow    Op = "unfollow"
	OpAddCampaign Op = "add_campaign"
	OpAddAd       Op = "add_ad"
	OpRemoveAd    Op = "remove_ad"
	OpPost        Op = "post"
	OpCheckIn     Op = "check_in"
	OpImpression  Op = "impression"
)

// Entry is one journaled event. Exactly the fields relevant to Op are set.
type Entry struct {
	Op Op        `json:"op"`
	At time.Time `json:"at,omitempty"`

	User     string  `json:"user,omitempty"`
	Followee string  `json:"followee,omitempty"`
	Text     string  `json:"text,omitempty"`
	Lat      float64 `json:"lat,omitempty"`
	Lng      float64 `json:"lng,omitempty"`

	Campaign *CampaignEntry `json:"campaign,omitempty"`
	Ad       *caar.Ad       `json:"ad,omitempty"`
	AdID     string         `json:"ad_id,omitempty"`
}

// CampaignEntry records an AddCampaign call.
type CampaignEntry struct {
	Name   string    `json:"name"`
	Budget float64   `json:"budget"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
}

// framePrefix tags a checksummed v2 record; legacy v1 lines start with '{'.
const framePrefix = "j2 "

// ErrDurability marks a failure to persist an entry (write, flush or fsync
// error). The operation was applied in memory but is NOT durable; servers
// should surface it as a 5xx so clients don't mistake it for a rejected
// request.
var ErrDurability = errors.New("journal: durability failure")

// castagnoli is the CRC32C polynomial table (hardware-accelerated on amd64
// and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when a file-backed Writer calls fsync.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: no acknowledged record is ever
	// lost to a crash, at the cost of one disk flush per write.
	SyncAlways SyncPolicy = iota
	// SyncIntervalPolicy fsyncs at most once per configured interval; a
	// crash loses at most the records appended since the last sync.
	SyncIntervalPolicy
	// SyncNever leaves flushing to the OS page cache.
	SyncNever
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncIntervalPolicy:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps "always", "interval" or "never" to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncIntervalPolicy, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("journal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// Writer appends entries to a log. Safe for concurrent use; each entry is
// written atomically with respect to other writers on the same Writer.
type Writer struct {
	mu  sync.Mutex
	out *bufio.Writer // guarded by mu
	// Sync, when non-nil, is called after every append (e.g. os.File.Sync
	// for durability; tests leave it nil). For policy-driven syncing use
	// NewFileWriter instead.
	Sync func() error

	// policy-driven fsync state (NewFileWriter).
	syncFn   func() error
	policy   SyncPolicy
	interval time.Duration
	lastSync time.Time // guarded by mu
	now      func() time.Time
	// pendingSync is set when an interval-policy append was acknowledged
	// without an fsync. SyncPending flushes it; without that, an idle tail
	// (traffic stops right after an append) would sit unsynced until the
	// *next* append — indefinitely.
	pendingSync bool // guarded by mu

	// observability: degraded flips on a durability failure and clears on
	// the next successful append; readers (the readiness probe) must not
	// block on w.mu behind a hung fsync, hence atomics.
	metrics  *Metrics
	degraded atomic.Bool
	lastErr  atomic.Value // string
}

// NewWriter wraps w in a journal writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{out: bufio.NewWriter(w), now: time.Now}
}

// NewFileWriter wraps an opened journal file in a writer with an fsync
// policy. interval is only meaningful with SyncIntervalPolicy. Call Close
// (or Flush) before discarding the writer so buffered records reach the
// file.
func NewFileWriter(f *os.File, policy SyncPolicy, interval time.Duration) *Writer {
	w := NewWriter(f)
	w.syncFn = f.Sync
	w.policy = policy
	w.interval = interval
	return w
}

// SetMetrics attaches observability collectors to the writer. Call before
// the first Append; a nil-metrics writer skips all recording.
func (w *Writer) SetMetrics(m *Metrics) {
	w.metrics = m
	if m != nil {
		m.degraded.Set(0)
	}
}

// Degraded reports whether the writer is in durability-error state — the
// last append failed to persist — along with the failure message. The next
// successful append clears it.
func (w *Writer) Degraded() (bool, string) {
	if !w.degraded.Load() {
		return false, ""
	}
	msg, _ := w.lastErr.Load().(string)
	return true, msg
}

// noteAppendError flags the durability-error state and passes err through.
func (w *Writer) noteAppendError(err error) error {
	w.degraded.Store(true)
	w.lastErr.Store(err.Error())
	if w.metrics != nil {
		w.metrics.appendErrors.Inc()
		w.metrics.degraded.Set(1)
	}
	return err
}

// noteAppendOK records a durable append of n framed bytes and clears the
// degraded state.
func (w *Writer) noteAppendOK(n int) { w.noteBatchOK(1, n) }

// noteBatchOK records count appended entries totalling n framed bytes and
// clears the degraded state.
func (w *Writer) noteBatchOK(count, n int) {
	w.degraded.Store(false)
	if w.metrics != nil {
		w.metrics.appends.Add(uint64(count))
		w.metrics.appendBytes.Add(uint64(n))
		w.metrics.degraded.Set(0)
	}
}

// Append writes one framed entry and flushes it to the underlying writer;
// whether it is also fsynced depends on the writer's sync policy.
func (w *Writer) Append(e Entry) error {
	if e.Op == "" {
		return errors.New("journal: entry without op")
	}
	buf, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	crc := crc32.Checksum(buf, castagnoli)

	w.mu.Lock() //caarlint:allow readpathlock journal append order is the durability contract; this lock defines it
	defer w.mu.Unlock()
	defer faultinject.WatchLock("journal.Writer.mu")()
	lenStr := strconv.Itoa(len(buf))
	w.out.WriteString(framePrefix)
	w.out.WriteString(lenStr)
	w.out.WriteByte(' ')
	fmt.Fprintf(w.out, "%08x ", crc)
	w.out.Write(buf)
	if err := w.out.WriteByte('\n'); err != nil {
		return w.noteAppendError(fmt.Errorf("%w: append: %w", ErrDurability, err))
	}
	if err := w.out.Flush(); err != nil {
		return w.noteAppendError(fmt.Errorf("%w: flush: %w", ErrDurability, err))
	}
	faultinject.CrashPoint(CrashPreFsync)
	if w.Sync != nil {
		if err := w.Sync(); err != nil {
			return w.noteAppendError(fmt.Errorf("%w: sync: %w", ErrDurability, err))
		}
	}
	if err := w.maybeSyncLocked(); err != nil {
		return w.noteAppendError(fmt.Errorf("%w: sync: %w", ErrDurability, err))
	}
	// Frame layout: "j2 " + len + " " + 8-hex-digit CRC + " " + payload + "\n".
	w.noteAppendOK(len(framePrefix) + len(lenStr) + 1 + 9 + len(buf) + 1)
	return nil
}

// AppendBatch writes a batch of framed entries and flushes them to the
// underlying writer with at most ONE fsync for the whole batch — the group
// commit at the heart of the asynchronous ingest path. Either the entire
// batch is durable per the sync policy or an error is returned and the
// caller must treat every entry in the batch as unacknowledged (a torn tail
// is cut by Recover on restart). Entries are validated and encoded outside
// the lock; the frame writes, single flush, and single policy sync happen
// under one lock acquisition, so concurrent Append/AppendBatch callers can
// never interleave frames.
func (w *Writer) AppendBatch(entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	bufs := make([][]byte, len(entries))
	crcs := make([]uint32, len(entries))
	for i, e := range entries {
		if e.Op == "" {
			return errors.New("journal: entry without op")
		}
		buf, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("journal: marshal: %w", err)
		}
		bufs[i] = buf
		crcs[i] = crc32.Checksum(buf, castagnoli)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	defer faultinject.WatchLock("journal.Writer.mu")()
	total := 0
	for i, buf := range bufs {
		lenStr := strconv.Itoa(len(buf))
		w.out.WriteString(framePrefix)
		w.out.WriteString(lenStr)
		w.out.WriteByte(' ')
		fmt.Fprintf(w.out, "%08x ", crcs[i])
		w.out.Write(buf)
		if err := w.out.WriteByte('\n'); err != nil {
			return w.noteAppendError(fmt.Errorf("%w: append: %w", ErrDurability, err))
		}
		total += len(framePrefix) + len(lenStr) + 1 + 9 + len(buf) + 1
	}
	if err := w.out.Flush(); err != nil {
		return w.noteAppendError(fmt.Errorf("%w: flush: %w", ErrDurability, err))
	}
	faultinject.CrashPoint(CrashPreFsync)
	if w.Sync != nil {
		if err := w.Sync(); err != nil {
			return w.noteAppendError(fmt.Errorf("%w: sync: %w", ErrDurability, err))
		}
	}
	if err := w.maybeSyncLocked(); err != nil {
		return w.noteAppendError(fmt.Errorf("%w: sync: %w", ErrDurability, err))
	}
	w.noteBatchOK(len(entries), total)
	return nil
}

// maybeSyncLocked applies the fsync policy; callers hold w.mu.
func (w *Writer) maybeSyncLocked() error {
	if w.syncFn == nil {
		return nil
	}
	switch w.policy {
	case SyncAlways:
		return w.timedSync()
	case SyncIntervalPolicy:
		now := w.now()
		if w.lastSync.IsZero() || now.Sub(w.lastSync) >= w.interval {
			if err := w.timedSync(); err != nil {
				return err
			}
			w.lastSync = now
			w.pendingSync = false
		} else {
			w.pendingSync = true
		}
	}
	return nil
}

// SyncPending flushes a deferred interval-policy fsync: if the last append
// was acknowledged without reaching stable storage, sync now. It is a no-op
// under SyncAlways (nothing is ever pending) and SyncNever (the operator
// opted out of fsync entirely). Callers with a clock — the ingest committer's
// idle timer, adserver's background ticker — invoke it so records appended
// just before traffic stops are not left unsynced until the next append.
func (w *Writer) SyncPending() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	defer faultinject.WatchLock("journal.Writer.mu")()
	if !w.pendingSync || w.syncFn == nil || w.policy != SyncIntervalPolicy {
		return nil
	}
	if err := w.timedSync(); err != nil {
		return w.noteAppendError(fmt.Errorf("%w: sync: %w", ErrDurability, err))
	}
	w.lastSync = w.now()
	w.pendingSync = false
	return nil
}

// timedSync runs syncFn under the fsync latency histogram.
func (w *Writer) timedSync() error {
	if w.metrics == nil {
		return w.syncFn()
	}
	start := time.Now()
	err := w.syncFn()
	w.metrics.fsyncs.Inc()
	w.metrics.fsyncSeconds.ObserveDuration(time.Since(start))
	return err
}

// Flush forces buffered records to the underlying writer and, for
// file-backed writers, fsyncs regardless of policy.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	defer faultinject.WatchLock("journal.Writer.mu")()
	if err := w.out.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	if w.syncFn != nil {
		if err := w.syncFn(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
		w.lastSync = w.now()
		w.pendingSync = false
	}
	return nil
}

// Close flushes and fsyncs pending records. It does not close the
// underlying file; the caller owns it.
func (w *Writer) Close() error { return w.Flush() }

// ReplayStats summarizes one replay.
type ReplayStats struct {
	Applied int // entries applied successfully
	Skipped int // entries that failed to apply (logged state conflicts)

	// Per-class breakdown of Skipped, so operators can tell benign
	// duplicates (idempotent re-replay) from the engine rejecting ops that
	// should have applied.
	SkippedDuplicate  int // errors.Is caar.ErrDuplicate
	SkippedUnknownRef int // unknown user/ad/campaign references
	SkippedInvalid    int // malformed payloads, unknown ops, validation failures

	// SkipErrors holds the first few skip errors verbatim for logging.
	SkipErrors []string

	Torn bool // the log tail was incomplete or corrupt (crash during append)

	// ValidBytes is the byte offset just past the last structurally valid
	// record; Recover truncates the file to this offset.
	ValidBytes int64
	// DiscardedBytes counts bytes Recover cut from a torn or corrupt tail.
	DiscardedBytes int64
}

// maxSkipErrors bounds ReplayStats.SkipErrors.
const maxSkipErrors = 5

// classify buckets an apply error into the ReplayStats breakdown.
func (s *ReplayStats) classify(err error) {
	s.Skipped++
	switch {
	case errors.Is(err, caar.ErrDuplicate):
		s.SkippedDuplicate++
	case errors.Is(err, caar.ErrUnknownUser), errors.Is(err, caar.ErrUnknownAd),
		errors.Is(err, caar.ErrUnknownCampaign):
		s.SkippedUnknownRef++
	default:
		s.SkippedInvalid++
	}
	if len(s.SkipErrors) < maxSkipErrors {
		s.SkipErrors = append(s.SkipErrors, err.Error())
	}
}

// Replay applies a journal to an engine. Entries that fail to apply (e.g. a
// duplicate user after a partial previous replay) are counted, classified
// and skipped rather than aborting, so replay is idempotent-ish over
// crash-recovered logs. A corrupt final record is reported as a torn tail;
// a corrupt record followed by more data aborts with an error (use Recover
// for a file that should be truncated and resumed instead).
func Replay(r io.Reader, eng *caar.Engine) (ReplayStats, error) {
	return replay(r, eng, false, nil)
}

// decodeLine validates one log line and returns its JSON payload.
func decodeLine(line []byte) ([]byte, error) {
	if bytes.HasPrefix(line, []byte(framePrefix)) {
		rest := line[len(framePrefix):]
		lenField, rest, ok := bytes.Cut(rest, []byte{' '})
		if !ok {
			return nil, errors.New("journal: framed record missing length")
		}
		crcField, payload, ok := bytes.Cut(rest, []byte{' '})
		if !ok {
			return nil, errors.New("journal: framed record missing checksum")
		}
		n, err := strconv.Atoi(string(lenField))
		if err != nil || n != len(payload) {
			return nil, fmt.Errorf("journal: framed record length %s != payload %d", lenField, len(payload))
		}
		want, err := strconv.ParseUint(string(crcField), 16, 32)
		if err != nil {
			return nil, fmt.Errorf("journal: bad checksum field %q", crcField)
		}
		if got := crc32.Checksum(payload, castagnoli); got != uint32(want) {
			return nil, fmt.Errorf("journal: checksum mismatch (want %08x, got %08x)", want, got)
		}
		return payload, nil
	}
	// Legacy v1: bare JSON object. Validity is decided by unmarshalling.
	return line, nil
}

// replay reads records, applying each to eng. In recover mode it stops at
// the first structurally invalid record (truncation point); in strict mode
// an invalid non-final record is an error. progress, when non-nil, is
// called after every processed record with the cumulative record count and
// byte offset (it feeds the readiness probe during recovery).
func replay(r io.Reader, eng *caar.Engine, recoverMode bool, progress func(records, bytes int64)) (ReplayStats, error) {
	var stats ReplayStats
	var records int64
	br := bufio.NewReaderSize(r, 1<<16)
	var offset int64
	var pending []byte // a structurally invalid line, fate decided by what follows
	for {
		line, readErr := br.ReadBytes('\n')
		if readErr != nil && !errors.Is(readErr, io.EOF) {
			// A read failure is not end-of-log: surfacing it (rather than
			// treating the file as ending here) keeps Recover from truncating
			// valid records past a transient I/O error.
			return stats, fmt.Errorf("journal: read: %w", readErr)
		}
		if len(line) == 0 && readErr != nil {
			break
		}
		lineEnd := offset + int64(len(line))
		offset = lineEnd
		content := bytes.TrimSuffix(line, []byte("\n"))
		content = bytes.TrimSuffix(content, []byte("\r"))

		if pending != nil {
			// The previous record failed to parse but was not final: corrupt.
			return stats, fmt.Errorf("journal: corrupt entry: %s", truncate(pending))
		}

		if len(content) == 0 {
			stats.ValidBytes = lineEnd
			if readErr != nil {
				break
			}
			continue
		}

		payload, err := decodeLine(content)
		var e Entry
		if err == nil {
			err = json.Unmarshal(payload, &e)
		}
		if err != nil {
			if recoverMode {
				// Truncation point: everything from this record on is cut.
				stats.Torn = true
				return stats, nil
			}
			// Possibly a torn final record; decide once we know whether more
			// data follows.
			pending = append([]byte(nil), content...)
			if readErr != nil {
				break
			}
			continue
		}

		faultinject.CrashPoint(CrashMidReplay)
		if applyErr := apply(eng, e); applyErr != nil {
			stats.classify(applyErr)
		} else {
			stats.Applied++
		}
		stats.ValidBytes = lineEnd
		records++
		if progress != nil {
			progress(records, lineEnd)
		}
		if readErr != nil {
			break
		}
	}
	if pending != nil {
		stats.Torn = true
	}
	return stats, nil
}

// Recover replays a journal file in recovery mode: a torn or corrupt tail
// is truncated to the last valid record instead of refusing to start, and
// the file is left positioned at its end, ready for appending. Records
// after a corrupt one (possible only after in-place corruption, never after
// a crash mid-append) are discarded with the tail; DiscardedBytes reports
// how much was cut.
func Recover(f *os.File, eng *caar.Engine) (ReplayStats, error) {
	return RecoverWithProgress(f, eng, nil)
}

// RecoverWithProgress is Recover with live progress reporting: p (when
// non-nil) is updated after every replayed record and marked finished once
// the file is truncated and repositioned, so a readiness probe can report
// "recovering, N records / M bytes replayed" instead of a bare 503.
func RecoverWithProgress(f *os.File, eng *caar.Engine, p *RecoveryProgress) (ReplayStats, error) {
	var progress func(records, bytes int64)
	if p != nil {
		p.start()
		if fi, err := f.Stat(); err == nil {
			p.setTotal(fi.Size())
		}
		progress = p.observe
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return ReplayStats{}, fmt.Errorf("journal: recover seek: %w", err)
	}
	stats, err := replay(f, eng, true, progress)
	if err != nil {
		return stats, err
	}
	fi, err := f.Stat()
	if err != nil {
		return stats, fmt.Errorf("journal: recover stat: %w", err)
	}
	if stats.ValidBytes < fi.Size() {
		stats.DiscardedBytes = fi.Size() - stats.ValidBytes
		if err := f.Truncate(stats.ValidBytes); err != nil {
			return stats, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return stats, fmt.Errorf("journal: sync after truncate: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return stats, fmt.Errorf("journal: recover seek end: %w", err)
	}
	if p != nil {
		p.finish(stats)
	}
	return stats, nil
}

// Reset truncates a journal file to empty and syncs it, leaving it
// positioned for appending. Call it after the journaled state has been
// durably captured elsewhere (a successful snapshot): the events in the log
// are then already embedded in the snapshot, and replaying them on top at
// the next startup would double-apply non-idempotent ops — re-charging
// campaign spend and re-counting vocabulary document frequencies.
func Reset(f *os.File) error {
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("journal: reset truncate: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("journal: reset sync: %w", err)
	}
	// The reset only matters when the snapshot that subsumes the log was
	// just renamed into place in the same directory. Syncing the parent
	// pins both directory operations; without it an OS crash can surface
	// the old directory state — a pre-reset journal next to (or without)
	// the new snapshot — and the next startup would double-apply spend.
	if err := FsyncDir(filepath.Dir(f.Name())); err != nil {
		return fmt.Errorf("journal: reset: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: reset seek: %w", err)
	}
	return nil
}

// FsyncDir fsyncs a directory, making directory-entry operations within it
// (file creation, rename, truncate-to-empty) durable. File fsync alone
// persists the bytes and the inode; the *name* pointing at them lives in
// the directory, which crashes can otherwise roll back.
func FsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: open dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: fsync dir %s: %w", dir, err)
	}
	return nil
}

func truncate(b []byte) string {
	const max = 80
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}

func apply(eng *caar.Engine, e Entry) error {
	switch e.Op {
	case OpAddUser:
		return eng.AddUser(e.User)
	case OpFollow:
		return eng.Follow(e.User, e.Followee)
	case OpUnfollow:
		return eng.Unfollow(e.User, e.Followee)
	case OpAddCampaign:
		if e.Campaign == nil {
			return errors.New("journal: add_campaign without payload")
		}
		c := e.Campaign
		return eng.AddCampaign(c.Name, c.Budget, c.Start, c.End)
	case OpAddAd:
		if e.Ad == nil {
			return errors.New("journal: add_ad without payload")
		}
		return eng.AddAd(*e.Ad)
	case OpRemoveAd:
		return eng.RemoveAd(e.AdID)
	case OpPost:
		return eng.Post(e.User, e.Text, e.At)
	case OpCheckIn:
		return eng.CheckIn(e.User, e.Lat, e.Lng, e.At)
	case OpImpression:
		if e.User != "" {
			_, err := eng.RecordImpressionTo(e.User, e.AdID, e.At)
			return err
		}
		_, err := eng.ServeImpression(e.AdID, e.At)
		return err
	default:
		return fmt.Errorf("journal: unknown op %q", e.Op)
	}
}

// Logged wraps an engine so every successful state change is appended to a
// journal. Reads (Recommend, Stats) pass through untouched via the embedded
// engine.
type Logged struct {
	*caar.Engine
	w *Writer
}

// NewLogged pairs an engine with a journal writer.
func NewLogged(eng *caar.Engine, w *Writer) *Logged {
	return &Logged{Engine: eng, w: w}
}

// Writer returns the underlying journal writer (e.g. to Flush it at
// shutdown).
func (l *Logged) Writer() *Writer { return l.w }

// HealthProblems aggregates degraded-state reasons from the engine
// (snapshot failures) and the journal writer (durability failures). The
// server's readiness probe reports these with a 503 so load balancers stop
// routing to a replica that can no longer persist what it acknowledges.
func (l *Logged) HealthProblems() []string {
	probs := l.Engine.HealthProblems()
	if bad, msg := l.w.Degraded(); bad {
		probs = append(probs, "journal: last append not durable: "+msg)
	}
	return probs
}

// Mutations follow the write-ahead contract: append (durable per the sync
// policy) first, then apply to the engine. The old apply-then-append order
// had a real failure mode — an append error (disk full, fsync failure)
// returned an error to the client while the mutation stayed live in memory,
// then silently vanished on restart; readers observed state the journal
// never contained. Journal-first closes it: an append error applies nothing,
// and an apply error after a durable append returns that error to the client
// while replay deterministically re-derives the same rejection (counted as a
// skip). Impressions are the one exception — billability is decided by the
// engine, so they stay apply-first and are declared in ApplyFirstOps for the
// soak ledger to classify as uncertain rather than acked.

// AddUser journals, then applies.
func (l *Logged) AddUser(handle string) error {
	if err := l.w.Append(Entry{Op: OpAddUser, User: handle}); err != nil {
		return err
	}
	return l.Engine.AddUser(handle)
}

// Follow journals, then applies.
func (l *Logged) Follow(follower, followee string) error {
	if err := l.w.Append(Entry{Op: OpFollow, User: follower, Followee: followee}); err != nil {
		return err
	}
	return l.Engine.Follow(follower, followee)
}

// Unfollow journals, then applies.
func (l *Logged) Unfollow(follower, followee string) error {
	if err := l.w.Append(Entry{Op: OpUnfollow, User: follower, Followee: followee}); err != nil {
		return err
	}
	return l.Engine.Unfollow(follower, followee)
}

// AddCampaign journals, then applies.
func (l *Logged) AddCampaign(name string, budget float64, start, end time.Time) error {
	if err := l.w.Append(Entry{Op: OpAddCampaign, Campaign: &CampaignEntry{
		Name: name, Budget: budget, Start: start, End: end,
	}}); err != nil {
		return err
	}
	return l.Engine.AddCampaign(name, budget, start, end)
}

// AddAd journals, then applies.
func (l *Logged) AddAd(ad caar.Ad) error {
	if err := l.w.Append(Entry{Op: OpAddAd, Ad: &ad}); err != nil {
		return err
	}
	return l.Engine.AddAd(ad)
}

// RemoveAd journals, then applies.
func (l *Logged) RemoveAd(id string) error {
	if err := l.w.Append(Entry{Op: OpRemoveAd, AdID: id}); err != nil {
		return err
	}
	return l.Engine.RemoveAd(id)
}

// Post journals, then applies.
func (l *Logged) Post(author, text string, at time.Time) error {
	if err := l.w.Append(Entry{Op: OpPost, User: author, Text: text, At: at}); err != nil {
		return err
	}
	return l.Engine.Post(author, text, at)
}

// CheckIn journals, then applies.
func (l *Logged) CheckIn(user string, lat, lng float64, at time.Time) error {
	if err := l.w.Append(Entry{Op: OpCheckIn, User: user, Lat: lat, Lng: lng, At: at}); err != nil {
		return err
	}
	return l.Engine.CheckIn(user, lat, lng, at)
}

// Invariants annotates the engine's report with the ops that remain
// apply-first (impressions: the engine decides billability before the entry
// exists), so the soak ledger knows which acks carry weaker guarantees.
func (l *Logged) Invariants() caar.InvariantReport {
	rep := l.Engine.Invariants()
	rep.ApplyFirstOps = []string{string(OpImpression)}
	return rep
}

// ServeImpression journals (when billable) and applies.
func (l *Logged) ServeImpression(adID string, at time.Time) (bool, error) {
	served, err := l.Engine.ServeImpression(adID, at)
	if err != nil || !served {
		return served, err
	}
	return served, l.w.Append(Entry{Op: OpImpression, AdID: adID, At: at})
}

// RecordImpressionTo journals (when billable) and applies a per-user
// impression, preserving frequency-capping state across recovery.
func (l *Logged) RecordImpressionTo(user, adID string, at time.Time) (bool, error) {
	served, err := l.Engine.RecordImpressionTo(user, adID, at)
	if err != nil || !served {
		return served, err
	}
	return served, l.w.Append(Entry{Op: OpImpression, User: user, AdID: adID, At: at})
}
