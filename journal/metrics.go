package journal

import (
	"caar/obs"
)

// fsyncBuckets covers the disk-flush latency range: fast NVMe fsyncs land
// around tens of microseconds, a struggling disk in the seconds.
var fsyncBuckets = obs.ExpBuckets(10e-6, 2, 20) // 10 µs .. ~5.2 s

// Metrics bundles the journal's observability collectors. Register one on
// the process registry with NewMetrics and attach it to a Writer via
// SetMetrics; a Writer without metrics records nothing.
type Metrics struct {
	appends      *obs.Counter
	appendBytes  *obs.Counter
	appendErrors *obs.Counter
	fsyncs       *obs.Counter
	fsyncSeconds *obs.Histogram
	degraded     *obs.Gauge

	replayApplied   *obs.Gauge
	replaySkipped   *obs.Gauge
	replayDiscarded *obs.Gauge
}

// NewMetrics registers the journal metric family on reg. Registration is
// get-or-create, so multiple writers may share one Metrics (their counts
// aggregate).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		appends: reg.Counter("caar_journal_appends_total",
			"Journal records durably appended."),
		appendBytes: reg.Counter("caar_journal_append_bytes_total",
			"Bytes of framed journal records written."),
		appendErrors: reg.Counter("caar_journal_append_errors_total",
			"Appends that failed to persist (write, flush or fsync error)."),
		fsyncs: reg.Counter("caar_journal_fsyncs_total",
			"fsync calls issued by the journal writer."),
		fsyncSeconds: reg.Histogram("caar_journal_fsync_seconds",
			"Latency of journal fsync calls.", fsyncBuckets),
		degraded: reg.Gauge("caar_journal_degraded",
			"1 while the journal writer is in durability-error state (last append failed to persist), else 0."),
		replayApplied: reg.Gauge("caar_journal_replay_applied",
			"Entries applied by the startup journal replay."),
		replaySkipped: reg.Gauge("caar_journal_replay_skipped",
			"Entries skipped by the startup journal replay (duplicates, unknown refs, invalid)."),
		replayDiscarded: reg.Gauge("caar_journal_replay_discarded_bytes",
			"Bytes cut from a torn or corrupt journal tail at recovery."),
	}
}

// ObserveReplay publishes one replay's outcome — call it after Recover or
// Replay at startup so the scrape reflects what recovery did.
func (m *Metrics) ObserveReplay(stats ReplayStats) {
	m.replayApplied.Set(float64(stats.Applied))
	m.replaySkipped.Set(float64(stats.Skipped))
	m.replayDiscarded.Set(float64(stats.DiscardedBytes))
}
