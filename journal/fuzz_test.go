package journal

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	caar "caar"
)

// FuzzDecodeLine throws arbitrary bytes at the frame decoder. Two
// properties: decodeLine never panics on hostile input, and a correctly
// framed payload always round-trips — the same encoding Append writes.
func FuzzDecodeLine(f *testing.F) {
	f.Add([]byte(`{"op":"add_user","user":"a"}`))
	f.Add([]byte(`j2 5 00000000 hello`))
	f.Add([]byte(`j2`))
	f.Add([]byte(`j2 999 deadbeef short`))
	f.Add([]byte(``))
	f.Add([]byte(`j2 0 00000000 `))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Hostile input: must classify, never panic. When it does decode a
		// framed line, the payload must carry a matching checksum.
		if payload, err := decodeLine(data); err == nil && bytes.HasPrefix(data, []byte(framePrefix)) {
			rest := data[len(framePrefix):]
			_, rest, _ = bytes.Cut(rest, []byte{' '})
			crcField, _, _ := bytes.Cut(rest, []byte{' '})
			want := fmt.Sprintf("%08x", crc32.Checksum(payload, castagnoli))
			// The checksum field may use upper/shorter hex spellings of the
			// same value; re-encode both for comparison.
			if got := fmt.Sprintf("%08x", mustHex(t, string(crcField))); got != want {
				t.Fatalf("decodeLine accepted frame with checksum %s, payload sums to %s", got, want)
			}
		}

		// Round-trip: frame the payload exactly as Append does.
		framed := fmt.Sprintf("%s%d %08x ", framePrefix, len(data), crc32.Checksum(data, castagnoli))
		line := append([]byte(framed), data...)
		payload, err := decodeLine(line)
		if err != nil {
			t.Fatalf("decodeLine rejected a well-formed frame: %v", err)
		}
		if !bytes.Equal(payload, data) {
			t.Fatalf("round-trip mismatch: wrote %q, decoded %q", data, payload)
		}
	})
}

func mustHex(t *testing.T, s string) uint32 {
	t.Helper()
	var v uint32
	if _, err := fmt.Sscanf(s, "%x", &v); err != nil {
		t.Fatalf("decodeLine accepted unparsable checksum field %q", s)
	}
	return v
}

// FuzzRecoverTornTail appends arbitrary garbage after a valid journal and
// checks the crash-recovery invariants: Recover never fails on a torn tail,
// replays every intact record, and truncates the file back to a state a
// second Recover fully accepts.
func FuzzRecoverTornTail(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("j2 "))
	f.Add([]byte(`{"op":"add_user","user":"x"`))
	f.Add([]byte("j2 28 00000000 {\"op\":\"add_user\",\"user\":\"b\"}\n"))
	f.Add([]byte("\n\n\n"))
	f.Fuzz(func(t *testing.T, tail []byte) {
		var log bytes.Buffer
		w := NewWriter(&log)
		valid := []Entry{
			{Op: OpAddUser, User: "alice"},
			{Op: OpAddUser, User: "bob"},
			{Op: OpFollow, User: "alice", Followee: "bob"},
		}
		for _, e := range valid {
			if err := w.Append(e); err != nil {
				t.Fatal(err)
			}
		}
		intactLen := int64(log.Len())

		path := filepath.Join(t.TempDir(), "journal.log")
		if err := os.WriteFile(path, append(log.Bytes(), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		fh, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer fh.Close()

		eng, err := caar.Open(caar.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		stats, err := Recover(fh, eng)
		if err != nil {
			t.Fatalf("Recover failed on torn tail %q: %v", tail, err)
		}
		if stats.Applied < len(valid) {
			t.Fatalf("recovered %d of %d intact records (tail %q)", stats.Applied, len(valid), tail)
		}
		if stats.ValidBytes < intactLen {
			t.Fatalf("ValidBytes %d < intact prefix %d", stats.ValidBytes, intactLen)
		}
		if eng.Stats().Users != 2 {
			t.Fatalf("engine state wrong after recover: %+v", eng.Stats())
		}

		// The truncated file must now be fully valid: a second recovery
		// accepts every byte and discards nothing.
		eng2, err := caar.Open(caar.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		stats2, err := Recover(fh, eng2)
		if err != nil {
			t.Fatalf("second Recover failed after truncation: %v", err)
		}
		if stats2.DiscardedBytes != 0 || stats2.Torn {
			t.Fatalf("truncated journal still torn: %+v", stats2)
		}
		if stats2.Applied != stats.Applied {
			t.Fatalf("second recovery applied %d, first %d", stats2.Applied, stats.Applied)
		}
	})
}

// FuzzAppendBatchRecover drives group commit with fuzz-chosen batch sizes
// and payloads, then crash-truncates the file at a fuzz-chosen offset.
// Invariants: Recover never errors, every record before the cut replays
// (batches are framed identically to single appends — no torn frames except
// the one the cut landed in), and the truncated file is fully valid on a
// second recovery.
func FuzzAppendBatchRecover(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint16(0))
	f.Add([]byte{8, 8}, uint16(5))
	f.Add([]byte{0, 255, 1}, uint16(40))
	f.Fuzz(func(t *testing.T, sizes []byte, cut uint16) {
		if len(sizes) > 8 {
			sizes = sizes[:8]
		}
		var log bytes.Buffer
		w := NewWriter(&log)
		total := 0
		for bi, s := range sizes {
			n := int(s)%7 + 1 // batch sizes 1..7
			batch := make([]Entry, n)
			for i := range batch {
				batch[i] = Entry{Op: OpAddUser, User: fmt.Sprintf("b%d-i%d-s%d", bi, i, s)}
			}
			if err := w.AppendBatch(batch); err != nil {
				t.Fatal(err)
			}
			total += n
		}
		raw := log.Bytes()
		keep := len(raw)
		if keep > 0 {
			keep -= int(cut) % (len(raw) + 1)
		}

		path := filepath.Join(t.TempDir(), "journal.log")
		if err := os.WriteFile(path, raw[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		fh, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer fh.Close()

		eng, err := caar.Open(caar.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		stats, err := Recover(fh, eng)
		if err != nil {
			t.Fatalf("Recover failed after cut at %d/%d: %v", keep, len(raw), err)
		}
		if stats.Applied > total {
			t.Fatalf("recovered %d records, only %d written", stats.Applied, total)
		}
		if stats.Skipped != 0 {
			t.Fatalf("unique-user batch records skipped: %+v", stats)
		}
		if eng.Stats().Users != stats.Applied {
			t.Fatalf("engine has %d users, %d records applied", eng.Stats().Users, stats.Applied)
		}
		// Count intact frames in the kept prefix (one complete frame per
		// newline; a trailing partial frame is the one legitimately lost).
		// Every intact frame must replay.
		intact := bytes.Count(raw[:keep], []byte("\n"))
		if stats.Applied < intact {
			t.Fatalf("only %d of %d intact frames replayed (cut %d)", stats.Applied, intact, keep)
		}

		// The truncated file must be fully valid on a second pass.
		eng2, err := caar.Open(caar.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		stats2, err := Recover(fh, eng2)
		if err != nil {
			t.Fatalf("second Recover failed: %v", err)
		}
		if stats2.DiscardedBytes != 0 || stats2.Torn || stats2.Applied != stats.Applied {
			t.Fatalf("truncated journal not clean: %+v vs %+v", stats2, stats)
		}
	})
}
