package journal

// Tests for the graceful-shutdown contract between snapshots and the
// journal: once a snapshot embeds the journaled events, the journal is
// Reset so the next startup restores the snapshot alone — replaying the
// log on top would re-charge campaign spend and re-count vocabulary
// document frequencies (neither op is idempotent).

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	caar "caar"
	"caar/internal/faultinject"
)

// snapMetrics extracts the non-idempotent state a double-replay would
// corrupt from a snapshot's JSON document.
type snapMetrics struct {
	Vocab struct {
		Docs int   `json:"docs"`
		DF   []int `json:"df"`
	} `json:"vocab"`
	Campaigns []struct {
		Name  string  `json:"name"`
		Spent float64 `json:"spent"`
	} `json:"campaigns"`
}

func metricsOf(t *testing.T, eng *caar.Engine) (docs, dfSum int, spent float64) {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var m snapMetrics
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	for _, df := range m.Vocab.DF {
		dfSum += df
	}
	for _, c := range m.Campaigns {
		spent += c.Spent
	}
	return m.Vocab.Docs, dfSum, spent
}

// TestSnapshotThenResetNoDoubleApply walks two full graceful
// shutdown/restart cycles and asserts campaign spend and vocabulary
// statistics stay exact: the journal reset after each snapshot means
// recovery replays nothing that the snapshot already contains.
func TestSnapshotThenResetNoDoubleApply(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "events.log")
	spath := filepath.Join(dir, "state.snap")

	// Live run: every mutation journaled, including a billable impression
	// (campaign spend) and posts (vocabulary document frequencies).
	jf, err := os.OpenFile(jpath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	eng1 := newEngine(t)
	w := NewFileWriter(jf, SyncAlways, 0)
	driveLogged(t, NewLogged(eng1, w))
	docs1, df1, spent1 := metricsOf(t, eng1)
	if spent1 == 0 {
		t.Fatal("test premise broken: no campaign spend recorded")
	}

	// Graceful shutdown: flush journal, snapshot, reset journal.
	shutdown := func(eng *caar.Engine, w *Writer, f *os.File) {
		t.Helper()
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := eng.SaveSnapshot(spath); err != nil {
			t.Fatal(err)
		}
		if err := Reset(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	shutdown(eng1, w, jf)

	// Restart 1: snapshot restores everything; the reset journal must
	// replay nothing on top.
	restart := func() (*caar.Engine, *os.File) {
		t.Helper()
		eng, _, err := caar.LoadSnapshot(caar.DefaultConfig(), spath)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(jpath, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := Recover(f, eng)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Applied != 0 || stats.Skipped != 0 {
			t.Fatalf("recovery after snapshot+reset replayed %d / skipped %d entries, want 0/0",
				stats.Applied, stats.Skipped)
		}
		return eng, f
	}
	eng2, jf2 := restart()
	if docs, df, spent := metricsOf(t, eng2); docs != docs1 || df != df1 || spent != spent1 {
		t.Fatalf("restart 1 state drifted: docs %d→%d, dfSum %d→%d, spent %v→%v",
			docs1, docs, df1, df, spent1, spent)
	}

	// New traffic after the restart is journaled as usual…
	w2 := NewFileWriter(jf2, SyncAlways, 0)
	l2 := NewLogged(eng2, w2)
	served, err := l2.ServeImpression("shoes", t0.Add(time.Minute))
	if err != nil || !served {
		t.Fatalf("impression after restart: served=%v err=%v", served, err)
	}
	docs2, df2sum, spent2 := metricsOf(t, eng2)
	if spent2 <= spent1 {
		t.Fatalf("second impression did not charge: %v → %v", spent1, spent2)
	}

	// …and a second shutdown/restart cycle still converges instead of
	// compounding spend and DF on every restart.
	shutdown(eng2, w2, jf2)
	eng3, jf3 := restart()
	defer jf3.Close()
	if docs, df, spent := metricsOf(t, eng3); docs != docs2 || df != df2sum || spent != spent2 {
		t.Fatalf("restart 2 state drifted: docs %d→%d, dfSum %d→%d, spent %v→%v",
			docs2, docs, df2sum, df, spent2, spent)
	}
}

// TestResetEmptiesJournal verifies Reset leaves an empty file positioned
// for appending, and that post-reset appends recover normally.
func TestResetEmptiesJournal(t *testing.T) {
	f, err := os.OpenFile(filepath.Join(t.TempDir(), "wal"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := NewFileWriter(f, SyncAlways, 0)
	if err := w.Append(Entry{Op: OpAddUser, User: "alice"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	if err := Reset(f); err != nil {
		t.Fatal(err)
	}
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("journal size after Reset = %d, want 0", fi.Size())
	}

	w2 := NewFileWriter(f, SyncAlways, 0)
	if err := w2.Append(Entry{Op: OpAddUser, User: "bob"}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	eng := newEngine(t)
	stats, err := Recover(f, eng)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 1 || stats.Skipped != 0 {
		t.Fatalf("recovery after reset+append: applied %d skipped %d, want 1/0", stats.Applied, stats.Skipped)
	}
}

// TestReplaySurfacesReadErrors distinguishes a failing read from a clean
// end-of-log: both strict and recover-mode replay must return the error so
// Recover aborts instead of truncating valid records at the failure point.
func TestReplaySurfacesReadErrors(t *testing.T) {
	var log bytes.Buffer
	driveLogged(t, NewLogged(newEngine(t), NewWriter(&log)))
	raw := log.Bytes()
	firstRec := int64(bytes.IndexByte(raw, '\n') + 1)
	budget := firstRec + 3 // the read fails partway through record two

	_, err := Replay(&faultinject.FailingReader{R: bytes.NewReader(raw), Budget: budget}, newEngine(t))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("strict replay swallowed read error: %v", err)
	}

	stats, err := replay(&faultinject.FailingReader{R: bytes.NewReader(raw), Budget: budget}, newEngine(t), true, nil)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("recover-mode replay swallowed read error: %v", err)
	}
	if stats.Torn {
		t.Fatal("read error misreported as torn tail")
	}
	if stats.ValidBytes != firstRec {
		t.Fatalf("ValidBytes = %d, want %d (end of record one)", stats.ValidBytes, firstRec)
	}
}
