package journal

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	caar "caar"
)

var t0 = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func newEngine(t *testing.T) *caar.Engine {
	t.Helper()
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// driveLogged applies a representative sequence of operations through a
// Logged wrapper.
func driveLogged(t *testing.T, l *Logged) {
	t.Helper()
	steps := []func() error{
		func() error { return l.AddUser("alice") },
		func() error { return l.AddUser("bob") },
		func() error { return l.Follow("alice", "bob") },
		func() error {
			return l.AddCampaign("spring", 100, t0.Add(-time.Hour), t0.Add(23*time.Hour))
		},
		func() error {
			return l.AddAd(caar.Ad{ID: "shoes", Text: "marathon running shoes", Campaign: "spring", Bid: 0.4})
		},
		func() error {
			return l.AddAd(caar.Ad{ID: "cafe", Text: "espresso downtown", Bid: 0.3,
				Target: &caar.Target{Lat: 1.5, Lng: 1.5, RadiusKm: 25}})
		},
		func() error { return l.CheckIn("alice", 1.5, 1.5, t0) },
		func() error { return l.Post("bob", "marathon day with espresso", t0) },
		func() error { _, err := l.ServeImpression("shoes", t0); return err },
		func() error { return l.AddAd(caar.Ad{ID: "tmp", Text: "temporary promo", Bid: 0.2}) },
		func() error { return l.RemoveAd("tmp") },
		func() error { return l.Unfollow("alice", "bob") },
		func() error { return l.Follow("alice", "bob") },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestJournalReplayReproducesEngine(t *testing.T) {
	var log bytes.Buffer
	live := NewLogged(newEngine(t), NewWriter(&log))
	driveLogged(t, live)

	recovered := newEngine(t)
	stats, err := Replay(&log, recovered)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 0 || stats.Torn {
		t.Fatalf("replay stats = %+v", stats)
	}
	if stats.Applied != 13 {
		t.Fatalf("applied %d entries, want 13", stats.Applied)
	}

	a := live.Stats()
	b := recovered.Stats()
	if a.Users != b.Users || a.Ads != b.Ads || a.FollowEdges != b.FollowEdges {
		t.Fatalf("state mismatch: live %+v vs recovered %+v", a, b)
	}

	// The replay also recovered the feed context: recommendations match.
	at := t0.Add(time.Minute)
	ra, err := live.Recommend("alice", 3, at)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := recovered.Recommend("alice", 3, at)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("rec lengths differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].AdID != rb[i].AdID {
			t.Fatalf("rank %d: %s vs %s", i, ra[i].AdID, rb[i].AdID)
		}
	}
}

func TestReplayToleratesTornTail(t *testing.T) {
	var log bytes.Buffer
	live := NewLogged(newEngine(t), NewWriter(&log))
	driveLogged(t, live)
	// Simulate a crash mid-append: chop the final line in half.
	raw := log.Bytes()
	torn := raw[:len(raw)-10]

	recovered := newEngine(t)
	stats, err := Replay(bytes.NewReader(torn), recovered)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Torn {
		t.Fatal("torn tail not detected")
	}
	if stats.Applied != 12 {
		t.Fatalf("applied %d, want 12 (all but the torn line)", stats.Applied)
	}
}

func TestReplayRejectsMidStreamCorruption(t *testing.T) {
	good := `{"op":"add_user","user":"a"}`
	bad := `{"op":"add_user","user` // corrupt, NOT final
	log := good + "\n" + bad + "\n" + good + "x\n"
	_, err := Replay(strings.NewReader(log), newEngine(t))
	if err == nil {
		t.Fatal("mid-stream corruption accepted")
	}
}

func TestReplaySkipsConflicts(t *testing.T) {
	log := strings.Join([]string{
		`{"op":"add_user","user":"a"}`,
		`{"op":"add_user","user":"a"}`,                  // duplicate: skipped
		`{"op":"follow","user":"a","followee":"ghost"}`, // unknown: skipped
	}, "\n")
	eng := newEngine(t)
	stats, err := Replay(strings.NewReader(log), eng)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 1 || stats.Skipped != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if eng.Stats().Users != 1 {
		t.Fatal("user not applied")
	}
}

func TestReplayUnknownOpSkipped(t *testing.T) {
	log := `{"op":"frobnicate"}`
	stats, err := Replay(strings.NewReader(log), newEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestWriterRejectsEmptyOp(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Append(Entry{}); err == nil {
		t.Fatal("empty op accepted")
	}
}

// errWriter fails every write, simulating a full or failing disk under the
// journal.
type errWriter struct{}

func (errWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

// TestLoggedFailedAppendAppliesNothing is the regression test for the
// write-ordering bug: Logged used to apply the engine mutation before
// appending, so a failed append returned an error to the client while the
// mutation stayed live in memory — and silently vanished on restart.
// Journal-first means an append failure must leave the engine untouched.
func TestLoggedFailedAppendAppliesNothing(t *testing.T) {
	l := NewLogged(newEngine(t), NewWriter(errWriter{}))
	if err := l.AddUser("alice"); err == nil {
		t.Fatal("append to failing disk reported success")
	}
	if got := l.Stats().Users; got != 0 {
		t.Fatalf("failed append left mutation live in memory: %d users, want 0", got)
	}
	if err := l.AddCampaign("c", 1, t0, t0.Add(time.Hour)); err == nil {
		t.Fatal("append to failing disk reported success")
	}
	if err := l.AddAd(caar.Ad{ID: "x", Text: "sneaker promo", Bid: 0.1}); err == nil {
		t.Fatal("append to failing disk reported success")
	}
	if got := l.Stats().Ads; got != 0 {
		t.Fatalf("failed append left ad live in memory: %d ads, want 0", got)
	}
}

// TestLoggedJournalFirst pins down the write-ahead contract: rejected
// mutations may leave entries in the journal (the append happens before
// validation), but replaying that journal reproduces the exact same end
// state because the engine re-derives the same rejections as skips. The
// impression path is the documented exception — billability is decided by
// the engine, so unserved impressions are applied-first and never journaled.
func TestLoggedJournalFirst(t *testing.T) {
	var log bytes.Buffer
	l := NewLogged(newEngine(t), NewWriter(&log))
	if err := l.AddUser(""); err == nil {
		t.Fatal("empty handle accepted")
	}
	if err := l.Follow("x", "y"); err == nil {
		t.Fatal("unknown users accepted")
	}
	// The rejected ops were journaled (write-ahead), but they must replay as
	// clean skips, converging to the same state.
	recovered := newEngine(t)
	stats, err := Replay(bytes.NewReader(log.Bytes()), recovered)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 0 || stats.Skipped != 2 {
		t.Fatalf("rejected ops did not replay as skips: %+v", stats)
	}
	if got := recovered.Stats().Users; got != 0 {
		t.Fatalf("replay of rejected ops created state: %d users", got)
	}

	// An unbillable impression is applied but not journaled.
	l.AddUser("u")
	l.AddCampaign("c", 0.1, t0, t0.Add(time.Hour))
	l.AddAd(caar.Ad{ID: "x", Text: "sneaker promo", Campaign: "c", Bid: 0.1})
	before := log.Len()
	served, err := l.ServeImpression("x", t0) // pacing: nothing released at start
	if err != nil || served {
		t.Fatalf("impression should be paced out: %v %v", served, err)
	}
	if log.Len() != before {
		t.Fatal("unserved impression journaled")
	}
	// And the wrapper declares the apply-first exception for the soak ledger.
	rep := l.Invariants()
	if len(rep.ApplyFirstOps) != 1 || rep.ApplyFirstOps[0] != string(OpImpression) {
		t.Fatalf("ApplyFirstOps = %v, want [%s]", rep.ApplyFirstOps, OpImpression)
	}
}

func TestJournalSyncHook(t *testing.T) {
	calls := 0
	w := NewWriter(&bytes.Buffer{})
	w.Sync = func() error { calls++; return nil }
	if err := w.Append(Entry{Op: OpAddUser, User: "a"}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("sync calls = %d", calls)
	}
}
