package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestAppendBatchGroupCommit checks the core group-commit property: a batch
// of N entries reaches the log with exactly one sync call, and every entry
// replays.
func TestAppendBatchGroupCommit(t *testing.T) {
	var log bytes.Buffer
	syncs := 0
	w := NewWriter(&log)
	w.Sync = func() error { syncs++; return nil }

	batch := make([]Entry, 8)
	for i := range batch {
		batch[i] = Entry{Op: OpAddUser, User: fmt.Sprintf("u%02d", i)}
	}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if syncs != 1 {
		t.Fatalf("batch of %d entries took %d syncs, want 1", len(batch), syncs)
	}
	eng := newEngine(t)
	stats, err := Replay(bytes.NewReader(log.Bytes()), eng)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != len(batch) || stats.Skipped != 0 || stats.Torn {
		t.Fatalf("replay stats = %+v", stats)
	}
	if got := eng.Stats().Users; got != len(batch) {
		t.Fatalf("recovered %d users, want %d", got, len(batch))
	}
}

func TestAppendBatchEmptyAndInvalid(t *testing.T) {
	var log bytes.Buffer
	w := NewWriter(&log)
	if err := w.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if log.Len() != 0 {
		t.Fatal("empty batch wrote bytes")
	}
	if err := w.AppendBatch([]Entry{{Op: OpAddUser, User: "a"}, {}}); err == nil {
		t.Fatal("entry without op accepted")
	}
	if log.Len() != 0 {
		t.Fatal("invalid batch wrote bytes before validation")
	}
}

// TestIdleTailSyncsWithinInterval is the regression test for the idle-tail
// durability gap: with SyncIntervalPolicy, a record acknowledged inside the
// interval window was only fsynced by the NEXT append — if traffic stopped,
// it sat unsynced indefinitely. SyncPending (driven by the ingest committer's
// idle timer or adserver's ticker) must flush the deferred sync.
func TestIdleTailSyncsWithinInterval(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	w := NewFileWriter(f, SyncIntervalPolicy, 100*time.Millisecond)
	now := time.Unix(1000, 0)
	w.now = func() time.Time { return now }
	syncs := 0
	inner := w.syncFn
	w.syncFn = func() error { syncs++; return inner() }

	// First append: lastSync is zero, so the policy syncs.
	if err := w.Append(Entry{Op: OpAddUser, User: "a"}); err != nil {
		t.Fatal(err)
	}
	if syncs != 1 {
		t.Fatalf("first append took %d syncs, want 1", syncs)
	}
	// Second append lands inside the interval: acknowledged without a sync.
	now = now.Add(10 * time.Millisecond)
	if err := w.Append(Entry{Op: OpAddUser, User: "b"}); err != nil {
		t.Fatal(err)
	}
	if syncs != 1 {
		t.Fatalf("in-interval append synced eagerly: %d syncs", syncs)
	}
	// Traffic stops. The idle flush must persist the deferred tail.
	if err := w.SyncPending(); err != nil {
		t.Fatal(err)
	}
	if syncs != 2 {
		t.Fatalf("idle tail not flushed: %d syncs, want 2", syncs)
	}
	// Nothing pending now: further flushes are no-ops.
	if err := w.SyncPending(); err != nil {
		t.Fatal(err)
	}
	if syncs != 2 {
		t.Fatalf("SyncPending synced with nothing pending: %d syncs", syncs)
	}
}

func TestSyncPendingNoOpForAlwaysAndNever(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncNever} {
		path := filepath.Join(t.TempDir(), "journal.log")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := NewFileWriter(f, policy, 0)
		syncs := 0
		inner := w.syncFn
		w.syncFn = func() error { syncs++; return inner() }
		if err := w.Append(Entry{Op: OpAddUser, User: "a"}); err != nil {
			t.Fatal(err)
		}
		base := syncs
		if err := w.SyncPending(); err != nil {
			t.Fatal(err)
		}
		if syncs != base {
			t.Errorf("policy %v: SyncPending synced (%d -> %d)", policy, base, syncs)
		}
		f.Close()
	}
}

// TestConcurrentAppendBatchFrameIntegrity hammers one writer with
// interleaved Append and AppendBatch calls from many goroutines (run under
// -race in the suite) and then recovers the file: every frame must be
// intact, every entry must apply, and the tail must not be torn.
func TestConcurrentAppendBatchFrameIntegrity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := NewFileWriter(f, SyncNever, 0)

	const (
		writers = 8
		rounds  = 25
	)
	var wg sync.WaitGroup
	total := 0
	for g := 0; g < writers; g++ {
		// Mixed batch sizes, including 1 via plain Append.
		size := 1 + g%5
		if size > 1 {
			total += rounds * size
		} else {
			total += rounds
		}
		wg.Add(1)
		go func(g, size int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if size == 1 {
					if err := w.Append(Entry{Op: OpAddUser, User: fmt.Sprintf("g%d-r%d", g, r)}); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				batch := make([]Entry, size)
				for i := range batch {
					batch[i] = Entry{Op: OpAddUser, User: fmt.Sprintf("g%d-r%d-i%d", g, r, i)}
				}
				if err := w.AppendBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(g, size)
	}
	wg.Wait()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	eng := newEngine(t)
	stats, err := Recover(f, eng)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Torn {
		t.Fatalf("concurrent batches tore the log: %+v", stats)
	}
	if stats.Applied != total || stats.Skipped != 0 {
		t.Fatalf("recovered %d applied / %d skipped, want %d / 0", stats.Applied, stats.Skipped, total)
	}
}
