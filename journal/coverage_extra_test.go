package journal

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	caar "caar"
)

// failWriter errors after n successful writes, simulating a full or broken
// disk under the journal.
type failWriter struct {
	n int
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestAppendSurfacesWriteErrors(t *testing.T) {
	w := NewWriter(&failWriter{n: 0})
	if err := w.Append(Entry{Op: OpAddUser, User: "a"}); err == nil {
		t.Fatal("write error swallowed")
	}
	// Sync errors surface too.
	w2 := NewWriter(&bytes.Buffer{})
	w2.Sync = func() error { return errors.New("fsync failed") }
	if err := w2.Append(Entry{Op: OpAddUser, User: "a"}); err == nil {
		t.Fatal("sync error swallowed")
	}
}

func TestLoggedRecordImpressionTo(t *testing.T) {
	var log bytes.Buffer
	l := NewLogged(newEngine(t), NewWriter(&log))
	l.AddUser("alice")
	l.AddAd(caar.Ad{ID: "x", Text: "sneaker sale", Bid: 0.5})
	served, err := l.RecordImpressionTo("alice", "x", t0)
	if err != nil || !served {
		t.Fatalf("impression: %v %v", served, err)
	}
	if !strings.Contains(log.String(), `"user":"alice"`) {
		t.Fatalf("per-user impression not journaled: %s", log.String())
	}

	// Replaying recovers frequency-capping state: one more impression puts
	// the recovered engine at cap 2.
	recovered := newEngine(t)
	if _, err := Replay(bytes.NewReader(log.Bytes()), recovered); err != nil {
		t.Fatal(err)
	}
	recovered.Post("alice", "sneaker shopping", t0)
	recs, err := recovered.RecommendWithPolicy("alice", 1, t0.Add(time.Minute),
		caar.ServingPolicy{FrequencyCap: 1, FrequencyWindow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("frequency state lost across replay: %+v", recs)
	}
	// Errors propagate.
	if _, err := l.RecordImpressionTo("ghost", "x", t0); err == nil {
		t.Fatal("ghost user accepted")
	}
}

// TestLoggedMutatorFailuresReplayAsSkips drives the error branch of every
// journal-first mutator: the client sees the rejection, the write-ahead
// entry lands in the log anyway, and replaying the log re-derives every
// rejection as a clean skip — the recovered engine stays empty.
func TestLoggedMutatorFailuresReplayAsSkips(t *testing.T) {
	var log bytes.Buffer
	l := NewLogged(newEngine(t), NewWriter(&log))
	fails := []func() error{
		func() error { return l.Unfollow("a", "b") },
		func() error { return l.AddCampaign("c", -1, t0, t0) },
		func() error { return l.AddAd(caar.Ad{ID: "", Text: "x y", Bid: 0.5}) },
		func() error { return l.RemoveAd("nope") },
		func() error { return l.Post("ghost", "hi", t0) },
		func() error { return l.CheckIn("ghost", 1, 1, t0) },
	}
	for i, f := range fails {
		if err := f(); err == nil {
			t.Fatalf("case %d: invalid operation accepted", i)
		}
	}
	recovered := newEngine(t)
	stats, err := Replay(bytes.NewReader(log.Bytes()), recovered)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 0 || stats.Skipped != len(fails) {
		t.Fatalf("rejected mutators did not replay as skips: %+v", stats)
	}
	st := recovered.Stats()
	if st.Users != 0 || st.Ads != 0 {
		t.Fatalf("replay of rejected mutators created state: %+v", st)
	}
}

func TestApplyMissingPayloads(t *testing.T) {
	eng := newEngine(t)
	for _, line := range []string{
		`{"op":"add_campaign"}`,
		`{"op":"add_ad"}`,
	} {
		stats, err := Replay(strings.NewReader(line), eng)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Skipped != 1 {
			t.Fatalf("%s: stats = %+v", line, stats)
		}
	}
}

func TestTruncateLongCorruption(t *testing.T) {
	long := `{"op":"add_user","user":"` + strings.Repeat("x", 200)
	log := long + "\n" + `{"op":"add_user","user":"ok"}`
	_, err := Replay(strings.NewReader(log), newEngine(t))
	if err == nil {
		t.Fatal("mid-stream corruption accepted")
	}
	if len(err.Error()) > 200 {
		t.Fatalf("corruption error not truncated: %d bytes", len(err.Error()))
	}
}
