package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeFixture journals a few entries into a temp file and returns the file
// path plus the byte offset of the start of each record.
func writeFixture(t *testing.T, entries []Entry) (string, []int64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.log")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := NewFileWriter(f, SyncNever, 0)
	var offsets []int64
	for _, e := range entries {
		pos, err := f.Seek(0, os.SEEK_END)
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, pos)
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, offsets
}

func fixtureEntries() []Entry {
	return []Entry{
		{Op: OpAddUser, User: "alice"},
		{Op: OpAddUser, User: "bob"},
		{Op: OpFollow, User: "alice", Followee: "bob"},
		{Op: OpPost, User: "bob", Text: "marathon espresso", At: t0},
	}
}

// TestRecoverTruncatesTornTail cuts the final record mid-frame (a crash
// during append) and asserts Recover truncates exactly at the start of the
// torn record and leaves the file appendable.
func TestRecoverTruncatesTornTail(t *testing.T) {
	path, offsets := writeFixture(t, fixtureEntries())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: keep its first 7 bytes only.
	torn := raw[:offsets[3]+7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	eng := newEngine(t)
	stats, err := Recover(f, eng)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Torn {
		t.Fatal("torn tail not detected")
	}
	if stats.Applied != 3 {
		t.Fatalf("applied %d, want 3", stats.Applied)
	}
	if stats.ValidBytes != offsets[3] {
		t.Fatalf("ValidBytes = %d, want %d (start of torn record)", stats.ValidBytes, offsets[3])
	}
	if stats.DiscardedBytes != 7 {
		t.Fatalf("DiscardedBytes = %d, want 7", stats.DiscardedBytes)
	}
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != offsets[3] {
		t.Fatalf("file size after recover = %d, want %d", fi.Size(), offsets[3])
	}

	// The file is positioned at its end: appending resumes cleanly.
	w := NewFileWriter(f, SyncAlways, 0)
	if err := w.Append(Entry{Op: OpPost, User: "bob", Text: "recovered and writing again", At: t0}); err != nil {
		t.Fatal(err)
	}
	recovered := newEngine(t)
	if _, err := f.Seek(0, os.SEEK_SET); err != nil {
		t.Fatal(err)
	}
	stats2, err := Replay(f, recovered)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Applied != 4 || stats2.Torn {
		t.Fatalf("post-recovery replay stats = %+v", stats2)
	}
}

// TestRecoverDetectsBitFlip flips one byte inside the checksummed payload of
// the final record; the CRC catches it and recovery truncates at the start
// of that record.
func TestRecoverDetectsBitFlip(t *testing.T) {
	path, offsets := writeFixture(t, fixtureEntries())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit well inside the last record's JSON payload.
	raw[offsets[3]+20] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stats, err := Recover(f, newEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Torn || stats.Applied != 3 {
		t.Fatalf("stats = %+v, want torn with 3 applied", stats)
	}
	if stats.ValidBytes != offsets[3] {
		t.Fatalf("ValidBytes = %d, want %d", stats.ValidBytes, offsets[3])
	}
}

// TestReplayStopsAtMidStreamBitFlip flips a byte in a non-final record:
// strict Replay must refuse rather than silently skip good data.
func TestReplayStopsAtMidStreamBitFlip(t *testing.T) {
	path, offsets := writeFixture(t, fixtureEntries())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[offsets[1]+15] ^= 0x01
	if _, err := Replay(bytes.NewReader(raw), newEngine(t)); err == nil {
		t.Fatal("mid-stream bit flip accepted by strict replay")
	}
}

// TestRecoverMidStreamCorruptionCutsTail asserts the documented (aggressive)
// recovery policy: everything from the first corrupt record on is
// discarded, even records that still verify after it.
func TestRecoverMidStreamCorruptionCutsTail(t *testing.T) {
	path, offsets := writeFixture(t, fixtureEntries())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[offsets[2]+15] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stats, err := Recover(f, newEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 2 || !stats.Torn {
		t.Fatalf("stats = %+v, want 2 applied + torn", stats)
	}
	if stats.ValidBytes != offsets[2] {
		t.Fatalf("ValidBytes = %d, want %d", stats.ValidBytes, offsets[2])
	}
	if fi, _ := f.Stat(); fi.Size() != offsets[2] {
		t.Fatalf("file not truncated to %d", offsets[2])
	}
}

// TestReplayLegacyFormat replays a v1 (bare JSON lines) log unchanged.
func TestReplayLegacyFormat(t *testing.T) {
	log := strings.Join([]string{
		`{"op":"add_user","user":"a"}`,
		`{"op":"add_user","user":"b"}`,
		`{"op":"follow","user":"a","followee":"b"}`,
	}, "\n") + "\n"
	eng := newEngine(t)
	stats, err := Replay(strings.NewReader(log), eng)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 3 || stats.Skipped != 0 || stats.Torn {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestReplayStatsClassification buckets skip errors by class and keeps the
// first few verbatim.
func TestReplayStatsClassification(t *testing.T) {
	log := strings.Join([]string{
		`{"op":"add_user","user":"a"}`,
		`{"op":"add_user","user":"a"}`,                  // duplicate
		`{"op":"follow","user":"a","followee":"ghost"}`, // unknown ref
		`{"op":"frobnicate"}`,                           // invalid
		`{"op":"add_campaign"}`,                         // invalid payload
	}, "\n")
	stats, err := Replay(strings.NewReader(log), newEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 1 || stats.Skipped != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.SkippedDuplicate != 1 || stats.SkippedUnknownRef != 1 || stats.SkippedInvalid != 2 {
		t.Fatalf("classification = dup:%d unknown:%d invalid:%d",
			stats.SkippedDuplicate, stats.SkippedUnknownRef, stats.SkippedInvalid)
	}
	if len(stats.SkipErrors) != 4 {
		t.Fatalf("SkipErrors = %v", stats.SkipErrors)
	}
	if !strings.Contains(stats.SkipErrors[0], "duplicate") {
		t.Fatalf("first skip error %q not the duplicate", stats.SkipErrors[0])
	}
}

// TestSkipErrorsBounded keeps only the first maxSkipErrors messages.
func TestSkipErrorsBounded(t *testing.T) {
	var sb strings.Builder
	for range maxSkipErrors + 3 {
		sb.WriteString(`{"op":"frobnicate"}` + "\n")
	}
	stats, err := Replay(strings.NewReader(sb.String()), newEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != maxSkipErrors+3 {
		t.Fatalf("skipped = %d", stats.Skipped)
	}
	if len(stats.SkipErrors) != maxSkipErrors {
		t.Fatalf("SkipErrors length = %d, want %d", len(stats.SkipErrors), maxSkipErrors)
	}
}

// TestSyncPolicies exercises always / interval / never against a counting
// sync hook.
func TestSyncPolicies(t *testing.T) {
	newCounting := func(policy SyncPolicy, interval time.Duration) (*Writer, *int) {
		calls := 0
		w := NewWriter(&bytes.Buffer{})
		w.syncFn = func() error { calls++; return nil }
		w.policy = policy
		w.interval = interval
		return w, &calls
	}

	w, calls := newCounting(SyncAlways, 0)
	for range 3 {
		if err := w.Append(Entry{Op: OpAddUser, User: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	if *calls != 3 {
		t.Fatalf("SyncAlways: %d sync calls, want 3", *calls)
	}

	w, calls = newCounting(SyncNever, 0)
	for range 3 {
		w.Append(Entry{Op: OpAddUser, User: "a"})
	}
	if *calls != 0 {
		t.Fatalf("SyncNever: %d sync calls, want 0", *calls)
	}
	// Flush syncs regardless of policy.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if *calls != 1 {
		t.Fatalf("Flush under SyncNever: %d sync calls, want 1", *calls)
	}

	w, calls = newCounting(SyncIntervalPolicy, time.Minute)
	clock := t0
	w.now = func() time.Time { return clock }
	w.Append(Entry{Op: OpAddUser, User: "a"}) // first append always syncs
	clock = clock.Add(time.Second)
	w.Append(Entry{Op: OpAddUser, User: "b"}) // within interval: no sync
	clock = clock.Add(2 * time.Minute)
	w.Append(Entry{Op: OpAddUser, User: "c"}) // past interval: sync
	if *calls != 2 {
		t.Fatalf("SyncInterval: %d sync calls, want 2", *calls)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{
		{"always", SyncAlways}, {"interval", SyncIntervalPolicy}, {"never", SyncNever},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestRecoverCleanLog leaves an intact log untouched.
func TestRecoverCleanLog(t *testing.T) {
	path, _ := writeFixture(t, fixtureEntries())
	before, _ := os.ReadFile(path)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stats, err := Recover(f, newEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Torn || stats.Applied != 4 || stats.DiscardedBytes != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Fatal("clean log modified by recovery")
	}
}
