package journal

import (
	"fmt"
	"sync/atomic"
	"time"
)

// RecoveryProgress publishes live journal-replay progress so the readiness
// probe can distinguish "recovering" from "wedged" during startup. One
// writer (the recovery goroutine) updates it through RecoverWithProgress;
// any number of readers (the /v1/readyz handler, the recovery gate) poll it
// lock-free.
type RecoveryProgress struct {
	totalBytes atomic.Int64
	records    atomic.Int64
	bytes      atomic.Int64
	startNs    atomic.Int64
	elapsedNs  atomic.Int64
	done       atomic.Bool
	stats      atomic.Value // ReplayStats
}

// NewRecoveryProgress returns a progress tracker in the "not started" state;
// Done() is false until RecoverWithProgress completes with it.
func NewRecoveryProgress() *RecoveryProgress { return &RecoveryProgress{} }

func (p *RecoveryProgress) start() { p.startNs.Store(time.Now().UnixNano()) }

func (p *RecoveryProgress) setTotal(n int64) { p.totalBytes.Store(n) }

func (p *RecoveryProgress) observe(records, bytes int64) {
	p.records.Store(records)
	p.bytes.Store(bytes)
}

func (p *RecoveryProgress) finish(stats ReplayStats) {
	if start := p.startNs.Load(); start != 0 {
		p.elapsedNs.Store(time.Now().UnixNano() - start)
	}
	p.stats.Store(stats)
	p.done.Store(true)
}

// Done reports whether recovery has completed.
func (p *RecoveryProgress) Done() bool { return p.done.Load() }

// Problems returns the not-ready reasons while recovery is running: the
// replay position (records applied, bytes consumed of the total), so pollers
// watching the numbers advance can tell progress from a hang. Empty once
// done.
func (p *RecoveryProgress) Problems() []string {
	if p.done.Load() {
		return nil
	}
	return []string{fmt.Sprintf("journal: replay in progress: %d records applied, %d/%d bytes",
		p.records.Load(), p.bytes.Load(), p.totalBytes.Load())}
}

// ReplaySummary is the completed-recovery record the readiness endpoint
// embeds once the server is ready, giving supervisors (and the soak
// harness) replay throughput without scraping logs.
type ReplaySummary struct {
	Records       int64   `json:"records"`
	Applied       int     `json:"applied"`
	Skipped       int     `json:"skipped"`
	Bytes         int64   `json:"bytes"`
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
	Torn          bool    `json:"torn,omitempty"`
}

// Summary returns the final replay accounting; ok is false until recovery
// completes.
func (p *RecoveryProgress) Summary() (ReplaySummary, bool) {
	if !p.done.Load() {
		return ReplaySummary{}, false
	}
	stats, _ := p.stats.Load().(ReplayStats)
	sum := ReplaySummary{
		Records: p.records.Load(),
		Applied: stats.Applied,
		Skipped: stats.Skipped,
		Bytes:   p.bytes.Load(),
		Seconds: float64(p.elapsedNs.Load()) / float64(time.Second),
		Torn:    stats.Torn,
	}
	if sum.Seconds > 0 {
		sum.RecordsPerSec = float64(sum.Records) / sum.Seconds
	}
	return sum, true
}
