package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition format, version 0.0.4:
//
//	# HELP name help text
//	# TYPE name counter|gauge|histogram
//	name{label="value"} 12 ...
//
// Histograms expand into cumulative <name>_bucket series with an le label
// (ending at le="+Inf"), plus <name>_sum and <name>_count.

// ContentType is the Content-Type of the exposition output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every registered metric in text exposition format,
// families sorted by name and series by label values, so output is
// deterministic for golden tests and diff-friendly for humans.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if err := f.expose(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the exposition (GET only).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w)
	})
}

func (f *family) expose(w io.Writer) error {
	f.mu.RLock()
	keys := append([]string(nil), f.order...)
	gaugeFn, counterFn, counterFloatFn := f.gaugeFn, f.counterFn, f.counterFloatFn
	f.mu.RUnlock()
	sort.Strings(keys)

	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}

	switch f.kind {
	case kindGaugeFunc:
		if gaugeFn == nil {
			return nil
		}
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(gaugeFn()))
		return err
	case kindCounterFunc:
		if counterFn == nil {
			return nil
		}
		_, err := fmt.Fprintf(w, "%s %d\n", f.name, counterFn())
		return err
	case kindCounterFloatFunc:
		if counterFloatFn == nil {
			return nil
		}
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(counterFloatFn()))
		return err
	}

	for _, key := range keys {
		f.mu.RLock()
		c := f.series[key]
		f.mu.RUnlock()
		values := splitKey(key, len(f.labels))
		var err error
		switch m := c.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), m.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(m.Value()))
		case *Histogram:
			err = exposeHistogram(w, f.name, f.labels, values, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func exposeHistogram(w io.Writer, name string, labels, values []string, h *Histogram) error {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		ls := labelString(labels, values, "le", formatFloat(bound))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, ls, cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	ls := labelString(labels, values, "le", "+Inf")
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, ls, cum); err != nil {
		return err
	}
	base := labelString(labels, values, "", "")
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, base, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, base, h.Count())
	return err
}

// labelString renders {a="x",b="y"} (empty string for no labels), with an
// optional extra label appended (the histogram le).
func labelString(labels, values []string, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func splitKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []string{key}
	}
	return strings.SplitN(key, "\xff", n)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes help text: backslash and newline only (quotes are
// legal in help).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float in the exposition's expected spelling:
// shortest round-trip form, with +Inf/-Inf/NaN named.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
