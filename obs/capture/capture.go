// Package capture is a flight recorder for performance anomalies: when the
// SLO watchdog trips (or an operator asks), it atomically captures a bundle
// of everything needed to explain a latency regression after the fact —
// pprof CPU/heap/goroutine/mutex/block profiles, the trace-ring tail, a
// metrics snapshot, and the status page — into a timestamped directory.
//
// The point is timing: by the time a human looks at a p99 alert, the spike
// is usually over and the evidence gone. Tripping the capture from the
// burn-rate watchdog takes the CPU profile while the anomaly is still
// happening, so the profile actually contains the regression's frames.
//
// Bundles are written under Config.Dir as
//
//	<dir>/20060102T150405Z-<trigger>/
//	    meta.json       reason, build identity, uptime, capture timings
//	    cpu.pprof       CPU profile over Config.CPUProfileDuration
//	    heap.pprof      allocation profile
//	    goroutine.pprof goroutine dump (proto form)
//	    mutex.pprof     mutex contention profile
//	    block.pprof     blocking profile
//	    traces.json     trace-ring tail (when a trace source is wired)
//	    metrics.prom    full Prometheus exposition (when a registry is wired)
//	    statusz.txt     status page (when a statusz source is wired)
//	    hotkeys.json    hot-key telemetry snapshot (when a hotkey source is wired)
//
// written first into a dot-prefixed temp directory, fsynced, and renamed
// into place, so a listing never observes a half-written bundle. Retention
// keeps the newest Config.Retain bundles; rate limiting (Config.
// MinInterval) turns a sustained incident into a handful of bundles, not
// thousands.
package capture

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"caar/obs"
)

// ErrThrottled is returned when a capture is suppressed by the rate limit
// or because another capture is already in flight.
var ErrThrottled = errors.New("capture: throttled")

// Config shapes a Recorder. Dir is required; everything else has defaults.
type Config struct {
	// Dir is the bundle root; created if missing.
	Dir string
	// Retain caps retained bundles; older ones are deleted. Default 8.
	Retain int
	// MinInterval is the minimum spacing between non-forced captures.
	// Default 1m.
	MinInterval time.Duration
	// CPUProfileDuration is how long the CPU profile samples. Default 2s.
	CPUProfileDuration time.Duration
	// Metrics, when set, is snapshotted into metrics.prom and receives the
	// caar_capture_ accounting metrics.
	Metrics *obs.Registry
	// TraceJSON, when set, renders the trace-ring tail for traces.json.
	TraceJSON func() ([]byte, error)
	// StatuszText, when set, renders statusz.txt.
	StatuszText func() ([]byte, error)
	// HotkeysJSON, when set, renders the hot-key telemetry snapshot for
	// hotkeys.json — so an SLO-trip bundle names the hot user / poster /
	// campaign behind the anomaly, not just its latency shape.
	HotkeysJSON func() ([]byte, error)
	// EnableContentionProfiling turns on the runtime's mutex and block
	// samplers at recorder construction, so mutex.pprof and block.pprof
	// carry data. Modest fixed rates (mutex 1/16 events, block >=1ms).
	EnableContentionProfiling bool
	// Now is the clock; tests substitute a fake for deterministic names.
	Now func() time.Time
}

// BundleFile describes one file inside a bundle.
type BundleFile struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
}

// BundleInfo summarizes one on-disk bundle for listings.
type BundleInfo struct {
	Name       string       `json:"name"`
	Trigger    string       `json:"trigger"`
	CapturedAt time.Time    `json:"captured_at"`
	Files      []BundleFile `json:"files"`
}

// Meta is the bundle's meta.json document.
type Meta struct {
	Name          string        `json:"name"`
	Reason        string        `json:"reason"`
	Trigger       string        `json:"trigger"`
	CapturedAt    time.Time     `json:"captured_at"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Build         obs.BuildInfo `json:"build"`
	Goroutines    int           `json:"goroutines"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	CPUSeconds    float64       `json:"cpu_profile_seconds"`
	Errors        []string      `json:"errors,omitempty"`
}

// Recorder writes capture bundles. Safe for concurrent use; at most one
// capture runs at a time (a CPU profile is process-global).
type Recorder struct {
	cfg   Config
	start time.Time
	seq   atomic.Uint64

	inFlight atomic.Bool
	lastUnix atomic.Int64 // completion time of the last successful capture

	bundles   *obs.CounterVec
	throttled *obs.Counter
	errorsC   *obs.Counter
}

// NewRecorder creates the bundle root and returns a recorder.
func NewRecorder(cfg Config) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, errors.New("capture: Config.Dir required")
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 8
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = time.Minute
	}
	if cfg.CPUProfileDuration <= 0 {
		cfg.CPUProfileDuration = 2 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	if cfg.EnableContentionProfiling {
		runtime.SetMutexProfileFraction(16)
		runtime.SetBlockProfileRate(int(time.Millisecond)) // sample blocks >= ~1ms
	}
	r := &Recorder{cfg: cfg, start: cfg.Now()}
	if reg := cfg.Metrics; reg != nil {
		r.bundles = reg.CounterVec("caar_capture_bundles_total",
			"Capture bundles written, by trigger.", "trigger")
		r.throttled = reg.Counter("caar_capture_throttled_total",
			"Capture requests suppressed by the rate limit or an in-flight capture.")
		r.errorsC = reg.Counter("caar_capture_errors_total",
			"Captures that failed outright (partial bundles count as written).")
		reg.GaugeFunc("caar_capture_last_unix_seconds",
			"Completion time of the last successful capture (0 before the first).",
			func() float64 { return float64(r.lastUnix.Load()) / 1e9 })
	}
	return r, nil
}

// Dir returns the bundle root.
func (r *Recorder) Dir() string { return r.cfg.Dir }

// SetSources wires the trace-tail, statusz, and hot-key renderers after
// construction: adserver builds the recorder before the HTTP server that
// owns those surfaces, and the server points them here when it is. nil
// arguments leave the existing source in place. Call before the first
// Capture; not synchronized with it.
func (r *Recorder) SetSources(traceJSON, statusz, hotkeys func() ([]byte, error)) {
	if traceJSON != nil {
		r.cfg.TraceJSON = traceJSON
	}
	if statusz != nil {
		r.cfg.StatuszText = statusz
	}
	if hotkeys != nil {
		r.cfg.HotkeysJSON = hotkeys
	}
}

// Capture writes one bundle and returns its name. trigger is a short label
// ("anomaly", "manual") used in the directory name and metrics; reason is
// the free-form explanation recorded in meta.json. Non-forced captures are
// rate-limited to one per MinInterval; forced captures (operator-requested)
// skip the interval but still refuse to overlap an in-flight capture —
// the runtime allows only one CPU profile at a time.
//
// Capture blocks for at least CPUProfileDuration; callers on a watchdog
// path should invoke it from a goroutine.
func (r *Recorder) Capture(trigger, reason string, force bool) (string, error) {
	if !r.inFlight.CompareAndSwap(false, true) {
		r.count(r.throttled)
		return "", fmt.Errorf("%w: capture already in flight", ErrThrottled)
	}
	defer r.inFlight.Store(false)
	if !force {
		if last := r.lastUnix.Load(); last != 0 &&
			r.cfg.Now().Sub(time.Unix(0, last)) < r.cfg.MinInterval {
			r.count(r.throttled)
			return "", fmt.Errorf("%w: last capture %s ago, min interval %s",
				ErrThrottled, r.cfg.Now().Sub(time.Unix(0, last)).Round(time.Second), r.cfg.MinInterval)
		}
	}

	now := r.cfg.Now()
	name := fmt.Sprintf("%s-%s-%d", now.UTC().Format("20060102T150405Z"),
		sanitizeTrigger(trigger), r.seq.Add(1))
	tmp := filepath.Join(r.cfg.Dir, ".tmp-"+name)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		r.count(r.errorsC)
		return "", fmt.Errorf("capture: %w", err)
	}
	meta := Meta{
		Name:          name,
		Reason:        reason,
		Trigger:       sanitizeTrigger(trigger),
		CapturedAt:    now,
		UptimeSeconds: now.Sub(r.start).Seconds(),
		Build:         obs.Build(),
		Goroutines:    runtime.NumGoroutine(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		CPUSeconds:    r.cfg.CPUProfileDuration.Seconds(),
	}
	// Collect every artifact, accumulating per-file errors into meta rather
	// than aborting: a bundle missing one profile is still evidence.
	fail := func(what string, err error) {
		if err != nil {
			meta.Errors = append(meta.Errors, what+": "+err.Error())
		}
	}
	fail("cpu.pprof", r.writeCPUProfile(filepath.Join(tmp, "cpu.pprof")))
	fail("heap.pprof", writeLookupProfile(filepath.Join(tmp, "heap.pprof"), "heap"))
	fail("goroutine.pprof", writeLookupProfile(filepath.Join(tmp, "goroutine.pprof"), "goroutine"))
	fail("mutex.pprof", writeLookupProfile(filepath.Join(tmp, "mutex.pprof"), "mutex"))
	fail("block.pprof", writeLookupProfile(filepath.Join(tmp, "block.pprof"), "block"))
	if r.cfg.TraceJSON != nil {
		b, err := r.cfg.TraceJSON()
		if err == nil {
			err = writeFileSync(filepath.Join(tmp, "traces.json"), b)
		}
		fail("traces.json", err)
	}
	if r.cfg.Metrics != nil {
		var sb strings.Builder
		err := r.cfg.Metrics.WritePrometheus(&sb)
		if err == nil {
			err = writeFileSync(filepath.Join(tmp, "metrics.prom"), []byte(sb.String()))
		}
		fail("metrics.prom", err)
	}
	if r.cfg.StatuszText != nil {
		b, err := r.cfg.StatuszText()
		if err == nil {
			err = writeFileSync(filepath.Join(tmp, "statusz.txt"), b)
		}
		fail("statusz.txt", err)
	}
	if r.cfg.HotkeysJSON != nil {
		b, err := r.cfg.HotkeysJSON()
		if err == nil {
			err = writeFileSync(filepath.Join(tmp, "hotkeys.json"), b)
		}
		fail("hotkeys.json", err)
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err == nil {
		err = writeFileSync(filepath.Join(tmp, "meta.json"), mb)
	}
	if err != nil {
		r.count(r.errorsC)
		_ = os.RemoveAll(tmp)
		return "", fmt.Errorf("capture: meta: %w", err)
	}

	if err := r.publish(tmp, filepath.Join(r.cfg.Dir, name)); err != nil {
		r.count(r.errorsC)
		_ = os.RemoveAll(tmp)
		return "", err
	}
	r.lastUnix.Store(r.cfg.Now().UnixNano())
	if r.bundles != nil {
		r.bundles.With(meta.Trigger).Inc()
	}
	r.enforceRetention()
	return name, nil
}

// publish atomically renames the temp bundle into place. Every file inside
// was already fsynced by writeFileSync, so the rename only has to make the
// directory entry durable.
func (r *Recorder) publish(tmp, final string) error {
	//caarlint:allow fsyncrename bundle files are individually fsynced in writeFileSync before this rename
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("capture: publish: %w", err)
	}
	return fsyncDir(r.cfg.Dir)
}

// count increments c when metrics are wired.
func (r *Recorder) count(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// cpuProfileMu serializes CPU profiling against anything else in the
// process (e.g. /debug/pprof/profile): the runtime supports one at a time.
var cpuProfileMu sync.Mutex

func (r *Recorder) writeCPUProfile(path string) error {
	cpuProfileMu.Lock()
	defer cpuProfileMu.Unlock()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	time.Sleep(r.cfg.CPUProfileDuration)
	pprof.StopCPUProfile()
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeLookupProfile(path, profile string) error {
	p := pprof.Lookup(profile)
	if p == nil {
		return fmt.Errorf("unknown profile %q", profile)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeFileSync(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fsyncDir makes directory-entry changes (bundle renames, deletions)
// durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// enforceRetention deletes the oldest bundles beyond Retain. Bundle names
// start with a UTC timestamp, so lexicographic order is chronological.
func (r *Recorder) enforceRetention() {
	names, err := r.bundleNames()
	if err != nil || len(names) <= r.cfg.Retain {
		return
	}
	for _, name := range names[:len(names)-r.cfg.Retain] {
		_ = os.RemoveAll(filepath.Join(r.cfg.Dir, name))
	}
	_ = fsyncDir(r.cfg.Dir)
}

// bundleNames lists published bundle directory names, oldest first.
func (r *Recorder) bundleNames() ([]string, error) {
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// List returns retained bundles, newest first.
func (r *Recorder) List() ([]BundleInfo, error) {
	names, err := r.bundleNames()
	if err != nil {
		return nil, err
	}
	out := make([]BundleInfo, 0, len(names))
	for i := len(names) - 1; i >= 0; i-- {
		info, err := r.stat(names[i])
		if err != nil {
			continue // racing a concurrent retention delete
		}
		out = append(out, info)
	}
	return out, nil
}

// stat builds a BundleInfo from the on-disk bundle.
func (r *Recorder) stat(name string) (BundleInfo, error) {
	dir := filepath.Join(r.cfg.Dir, name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return BundleInfo{}, err
	}
	info := BundleInfo{Name: name}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			continue
		}
		info.Files = append(info.Files, BundleFile{Name: e.Name(), Bytes: fi.Size()})
	}
	var meta Meta
	if b, err := os.ReadFile(filepath.Join(dir, "meta.json")); err == nil {
		if json.Unmarshal(b, &meta) == nil {
			info.Trigger = meta.Trigger
			info.CapturedAt = meta.CapturedAt
		}
	}
	return info, nil
}

// Meta reads a bundle's meta.json.
func (r *Recorder) Meta(name string) (Meta, error) {
	clean, err := r.safeName(name)
	if err != nil {
		return Meta{}, err
	}
	b, err := os.ReadFile(filepath.Join(r.cfg.Dir, clean, "meta.json"))
	if err != nil {
		return Meta{}, err
	}
	var m Meta
	if err := json.Unmarshal(b, &m); err != nil {
		return Meta{}, err
	}
	return m, nil
}

// ReadFile returns one file from a bundle. Both names are validated against
// path traversal — they come off the HTTP surface.
func (r *Recorder) ReadFile(bundle, file string) ([]byte, error) {
	cb, err := r.safeName(bundle)
	if err != nil {
		return nil, err
	}
	cf, err := r.safeName(file)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(filepath.Join(r.cfg.Dir, cb, cf))
}

// safeName rejects path separators, traversal, and hidden names.
func (r *Recorder) safeName(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, "/\\") ||
		strings.Contains(name, "..") || strings.HasPrefix(name, ".") {
		return "", fmt.Errorf("capture: invalid name %q", name)
	}
	return name, nil
}

// sanitizeTrigger restricts the trigger label to a filesystem- and
// metric-label-safe slug.
func sanitizeTrigger(t string) string {
	if t == "" {
		return "manual"
	}
	var b strings.Builder
	for _, r := range t {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteByte('-')
		}
	}
	s := strings.Trim(b.String(), "-")
	if s == "" {
		return "manual"
	}
	if len(s) > 48 {
		s = s[:48]
	}
	return s
}
