package capture

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"caar/obs"
)

func fastConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Dir:                t.TempDir(),
		CPUProfileDuration: 50 * time.Millisecond,
		MinInterval:        time.Hour, // exercise the throttle deterministically
	}
}

func TestCaptureWritesBundle(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("caar_test_probe_total", "t").Add(7)
	cfg := fastConfig(t)
	cfg.Metrics = reg
	cfg.TraceJSON = func() ([]byte, error) { return []byte(`{"traces":[]}`), nil }
	cfg.StatuszText = func() ([]byte, error) { return []byte("status ok\n"), nil }
	r, err := NewRecorder(cfg)
	if err != nil {
		t.Fatal(err)
	}

	name, err := r.Capture("anomaly", "burn rate 20 on rec", false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(name, "-anomaly-") {
		t.Errorf("bundle name %q lacks trigger slug", name)
	}

	meta, err := r.Meta(name)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Reason != "burn rate 20 on rec" || meta.Trigger != "anomaly" {
		t.Errorf("meta = %+v", meta)
	}
	if len(meta.Errors) != 0 {
		t.Errorf("capture recorded per-file errors: %v", meta.Errors)
	}

	for _, f := range []string{"cpu.pprof", "heap.pprof", "goroutine.pprof",
		"mutex.pprof", "block.pprof", "traces.json", "metrics.prom", "statusz.txt", "meta.json"} {
		b, err := r.ReadFile(name, f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if len(b) == 0 {
			t.Errorf("%s is empty", f)
		}
	}
	if b, _ := r.ReadFile(name, "metrics.prom"); !strings.Contains(string(b), "caar_test_probe_total 7") {
		t.Error("metrics.prom missing registry contents")
	}

	// No temp residue.
	entries, _ := os.ReadDir(cfg.Dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") {
			t.Errorf("temp residue %q left behind", e.Name())
		}
	}

	list, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != name || list[0].Trigger != "anomaly" {
		t.Errorf("List = %+v", list)
	}
}

func TestCaptureRateLimitAndForce(t *testing.T) {
	reg := obs.NewRegistry()
	r, err := NewRecorder(Config{Dir: t.TempDir(), CPUProfileDuration: 20 * time.Millisecond,
		MinInterval: time.Hour, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Capture("anomaly", "first", false); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Capture("anomaly", "second", false); !errors.Is(err, ErrThrottled) {
		t.Fatalf("second capture err = %v, want ErrThrottled", err)
	}
	if _, err := r.Capture("manual", "operator", true); err != nil {
		t.Fatalf("forced capture: %v", err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`caar_capture_bundles_total{trigger="anomaly"} 1`,
		`caar_capture_bundles_total{trigger="manual"} 1`,
		"caar_capture_throttled_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestRetentionPrunesOldest(t *testing.T) {
	// A controllable clock so bundle names (timestamp-prefixed) are distinct
	// and ordered.
	now := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	r, err := NewRecorder(Config{Dir: t.TempDir(), Retain: 2,
		CPUProfileDuration: time.Millisecond, MinInterval: time.Nanosecond,
		Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for i := 0; i < 4; i++ {
		now = now.Add(time.Minute)
		n, err := r.Capture("manual", "prune test", true)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, n)
	}
	list, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("retained %d bundles, want 2", len(list))
	}
	if list[0].Name != names[3] || list[1].Name != names[2] {
		t.Errorf("retained %q,%q; want newest two %q,%q",
			list[0].Name, list[1].Name, names[3], names[2])
	}
	if _, err := r.Meta(names[0]); err == nil {
		t.Error("oldest bundle should be pruned")
	}
}

func TestReadFileRejectsTraversal(t *testing.T) {
	r, err := NewRecorder(Config{Dir: t.TempDir(), CPUProfileDuration: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	name, err := r.Capture("manual", "traversal test", true)
	if err != nil {
		t.Fatal(err)
	}
	// Plant a file outside the bundle root that traversal would reach.
	outside := filepath.Join(filepath.Dir(r.Dir()), "secret.txt")
	if err := os.WriteFile(outside, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]string{
		{"../", "meta.json"},
		{name, "../../secret.txt"},
		{name, "..\\secret.txt"},
		{".tmp-x", "meta.json"},
		{name, ""},
	} {
		if _, err := r.ReadFile(bad[0], bad[1]); err == nil {
			t.Errorf("ReadFile(%q, %q) succeeded", bad[0], bad[1])
		}
	}
}

func TestSanitizeTrigger(t *testing.T) {
	for in, want := range map[string]string{
		"":                       "manual",
		"Anomaly: REC!":          "anomaly--rec",
		"slo/burn rate":          "slo-burn-rate",
		"ok-trigger_1":           "ok-trigger_1",
		"///":                    "manual",
		strings.Repeat("x", 100): strings.Repeat("x", 48),
	} {
		if got := sanitizeTrigger(in); got != want {
			t.Errorf("sanitizeTrigger(%q) = %q, want %q", in, got, want)
		}
	}
}
