package hotkey

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"caar/obs"
)

func testClock(start time.Time) (func() time.Time, func(time.Duration)) {
	var mu sync.Mutex
	now := start
	return func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		}, func(d time.Duration) {
			mu.Lock()
			now = now.Add(d)
			mu.Unlock()
		}
}

func TestTrackerReportsPlantedHotKey(t *testing.T) {
	clock, _ := testClock(time.Unix(10000, 0))
	tr, err := New(Config{Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tr.RecordKey(DimUsers, 7, 1)
	}
	for k := uint64(0); k < 40; k++ {
		tr.RecordKey(DimUsers, 100+k, 3)
	}
	rep, err := tr.Report(DimUsers, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Keys) != 5 {
		t.Fatalf("got %d keys", len(rep.Keys))
	}
	if rep.Keys[0].Key != "key:7" || rep.Keys[0].Count < 500 {
		t.Fatalf("hot key not on top: %+v", rep.Keys[0])
	}
	if rep.Keys[0].Count > 500+rep.Keys[0].ErrorBound {
		t.Fatalf("estimate outside bound: %+v", rep.Keys[0])
	}
	if rep.WindowWeight != 500+40*3 {
		t.Fatalf("window weight = %d", rep.WindowWeight)
	}
	if rep.Events != 540 || rep.Dropped != 0 {
		t.Fatalf("events=%d dropped=%d", rep.Events, rep.Dropped)
	}
}

func TestTrackerStringKeysAndResolver(t *testing.T) {
	clock, _ := testClock(time.Unix(10000, 0))
	tr, err := New(Config{Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tr.Record(DimCampaigns, "summer-sale", 1)
	}
	tr.Record(DimCampaigns, "b2b-q3", 1)
	rep, err := tr.Report(DimCampaigns, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Keys[0].Key != "summer-sale" || rep.Keys[0].Count != 20 {
		t.Fatalf("campaign report = %+v", rep.Keys)
	}

	// Raw keys fall back to the resolver, then to a numeric form.
	tr.RecordKey(DimUsers, 42, 9)
	tr.RecordKey(DimUsers, 43, 1)
	tr.SetResolver(DimUsers, func(key uint64) string {
		if key == 42 {
			return "alice"
		}
		return ""
	})
	urep, err := tr.Report(DimUsers, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if urep.Keys[0].Key != "alice" {
		t.Fatalf("resolver not applied: %+v", urep.Keys)
	}
	if urep.Keys[1].Key != "key:43" {
		t.Fatalf("fallback name wrong: %+v", urep.Keys)
	}
}

func TestTrackerWindowDecay(t *testing.T) {
	clock, advance := testClock(time.Unix(10000, 0))
	tr, err := New(Config{Window: 6 * time.Second, SubWindows: 6, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	tr.RecordKey(DimTerms, 5, 100)
	tr.Sync()
	if rep, _ := tr.Report(DimTerms, 3, 0); len(rep.Keys) != 1 {
		t.Fatalf("key not visible: %+v", rep)
	}
	advance(10 * time.Second) // past the whole ring
	rep, err := tr.Report(DimTerms, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Keys) != 0 || rep.WindowWeight != 0 {
		t.Fatalf("window did not decay: %+v", rep)
	}
	// Lifetime counters survive decay.
	if rep.Events != 1 {
		t.Fatalf("events = %d", rep.Events)
	}
}

func TestTrackerQueueOverflowDropsNotBlocks(t *testing.T) {
	clock, _ := testClock(time.Unix(10000, 0))
	tr, err := New(Config{QueueCapacity: 8, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tr.RecordKey(DimUsers, uint64(i), 1)
	}
	rep, err := tr.Report(DimUsers, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 8 || rep.Dropped != 92 {
		t.Fatalf("events=%d dropped=%d, want 8/92", rep.Events, rep.Dropped)
	}
}

func TestTrackerUnknownDimensionAndNilSafety(t *testing.T) {
	clock, _ := testClock(time.Unix(10000, 0))
	tr, _ := New(Config{Now: clock})
	if _, err := tr.Report(Dimension("bogus"), 5, 0); err == nil {
		t.Fatal("unknown dimension accepted")
	}
	tr.RecordKey(Dimension("bogus"), 1, 1) // must not panic
	tr.RecordKey(DimUsers, 1, 0)           // zero weight ignored
	if rep, _ := tr.Report(DimUsers, 5, 0); rep.Events != 0 {
		t.Fatalf("zero-weight event recorded: %+v", rep)
	}

	var nilT *Tracker
	nilT.RecordKey(DimUsers, 1, 1)
	nilT.Record(DimCampaigns, "x", 1)
	nilT.Sync()
	nilT.SetResolver(DimUsers, nil)
	if _, err := nilT.Report(DimUsers, 5, 0); err == nil {
		t.Fatal("nil tracker Report should error")
	}
}

func TestTrackerMetricsFamilies(t *testing.T) {
	clock, _ := testClock(time.Unix(10000, 0))
	reg := obs.NewRegistry()
	tr, err := New(Config{Metrics: reg, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	tr.RecordKey(DimUsers, 1, 5)
	tr.RecordKey(DimUsers, 1, 5)
	tr.Sync()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`caar_hot_events_total{dim="users"} 2`,
		`caar_hot_dropped_total{dim="users"} 0`,
		`caar_hot_tracked_keys{dim="users"} 1`,
		`caar_hot_window_weight{dim="users"} 10`,
		`caar_hot_top_share_ratio{dim="users"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestTrackerConcurrentRecordersWithAggregator(t *testing.T) {
	clock, _ := testClock(time.Unix(10000, 0))
	tr, err := New(Config{Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var aggWG sync.WaitGroup
	aggWG.Add(1)
	go func() {
		defer aggWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Sync()
			}
		}
	}()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.RecordKey(DimUsers, uint64(w%4), 1)
				tr.Record(DimCampaigns, fmt.Sprintf("c%d", w%3), 1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	aggWG.Wait()
	rep, err := tr.Report(DimUsers, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events+rep.Dropped != workers*per {
		t.Fatalf("events %d + dropped %d != %d", rep.Events, rep.Dropped, workers*per)
	}
	// Nothing should drop: the aggregator was draining continuously.
	if rep.Dropped != 0 {
		t.Fatalf("%d drops with a live aggregator", rep.Dropped)
	}
	if rep.WindowWeight != rep.Events {
		t.Fatalf("window weight %d != events %d", rep.WindowWeight, rep.Events)
	}
	crep, err := tr.Report(DimCampaigns, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(crep.Keys) != 3 || !strings.HasPrefix(crep.Keys[0].Key, "c") {
		t.Fatalf("campaign keys = %+v", crep.Keys)
	}
}

func TestQueueWrapAround(t *testing.T) {
	q := newQueue(4)
	for lap := 0; lap < 10; lap++ {
		for i := 0; i < 4; i++ {
			if !q.push(event{key: uint64(lap*4 + i), weight: 1}) {
				t.Fatalf("lap %d push %d failed", lap, i)
			}
		}
		if q.push(event{key: 999, weight: 1}) {
			t.Fatal("push into full ring succeeded")
		}
		for i := 0; i < 4; i++ {
			ev, ok := q.pop()
			if !ok || ev.key != uint64(lap*4+i) {
				t.Fatalf("lap %d pop %d = %+v ok=%v", lap, i, ev, ok)
			}
		}
		if _, ok := q.pop(); ok {
			t.Fatal("pop from empty ring succeeded")
		}
	}
}
