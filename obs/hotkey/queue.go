package hotkey

import "sync/atomic"

// event is one record-path observation: a key (pre-hashed for string-keyed
// dimensions, with the display name carried alongside) and its weight.
type event struct {
	key    uint64
	weight uint64
	name   string
}

// queue is a bounded lock-free multi-producer single-consumer ring (the
// bounded-MPMC design with per-slot sequence numbers, consumed from a
// single goroutine). Producers never block and never spin on a full ring:
// push fails fast and the caller counts a drop. That is the property the
// serving path needs — a slow or stopped aggregator costs telemetry
// fidelity, never request latency, and caarlint's readpathlock stays green
// because the record path takes no locks.
type queue struct {
	slots []qslot
	mask  uint64
	head  atomic.Uint64 // next enqueue position (producers, CAS)
	tail  uint64        // next dequeue position (single consumer only)
}

type qslot struct {
	// seq == pos: slot free for the producer claiming pos.
	// seq == pos+1: slot filled, ready for the consumer at pos.
	seq atomic.Uint64
	ev  event
}

// newQueue rounds capacity up to a power of two.
func newQueue(capacity int) *queue {
	n := 1
	for n < capacity {
		n <<= 1
	}
	q := &queue{slots: make([]qslot, n), mask: uint64(n - 1)}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q
}

// push enqueues ev, returning false when the ring is full.
func (q *queue) push(ev event) bool {
	pos := q.head.Load()
	for {
		s := &q.slots[pos&q.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if q.head.CompareAndSwap(pos, pos+1) {
				s.ev = ev
				s.seq.Store(pos + 1)
				return true
			}
			pos = q.head.Load()
		case d < 0:
			// The slot still holds an entry from one lap ago: full.
			return false
		default:
			// Another producer claimed pos; reload and retry.
			pos = q.head.Load()
		}
	}
}

// pop dequeues the oldest event. Single-consumer: callers serialize pops
// behind the aggregator mutex.
func (q *queue) pop() (event, bool) {
	s := &q.slots[q.tail&q.mask]
	if s.seq.Load() != q.tail+1 {
		return event{}, false
	}
	ev := s.ev
	s.ev = event{} // release the name string
	s.seq.Store(q.tail + uint64(len(q.slots)))
	q.tail++
	return ev, true
}
