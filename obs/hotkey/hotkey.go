// Package hotkey is the always-on heavy-hitter telemetry layer: bounded-
// memory sliding-window sketches over the serving and ingest paths that
// answer "which key is hot right now" per dimension — the user drawing
// recommendation traffic, the poster with the costliest fan-out, the
// campaign burning impressions, the keyword term flooding the post stream.
//
// The design splits the hot path from aggregation. Record sites (inside
// Recommend/deliver/ServeImpression, which caarlint's readpathlock analyzer
// keeps lock-free) do exactly one lock-free enqueue onto a bounded
// per-dimension MPSC ring; a full ring drops the observation and bumps an
// atomic counter, so telemetry can degrade but can never add latency or
// unbounded memory to serving. A single aggregator — driven by Run's
// ticker and by every query — drains the rings under a per-dimension mutex
// into a sketch.Windowed (count-min + space-saving top-k, time-decayed in
// ring'd sub-windows) and refreshes the caar_hot_* gauges.
//
// Estimates carry explicit error bounds: a reported count never
// under-states the true windowed count and over-states it by at most the
// reported bound (ε·N per sub-window, summed over the window) with
// per-sub-window probability ≥ 1−δ.
package hotkey

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"caar/internal/sketch"
	"caar/obs"
)

// Dimension names one tracked key space.
type Dimension string

const (
	// DimUsers counts recommendation requests per requesting user.
	DimUsers Dimension = "users"
	// DimPosters counts delivery fan-out cost per post author: each post
	// weighs author's-follower-count + 1, the number of windows written.
	DimPosters Dimension = "posters"
	// DimCampaigns counts served impressions per campaign (per ad for
	// campaign-less ads).
	DimCampaigns Dimension = "campaigns"
	// DimTerms counts keyword-term occurrences in the post stream.
	DimTerms Dimension = "terms"
)

// Dimensions lists every tracked dimension in reporting order.
func Dimensions() []Dimension {
	return []Dimension{DimUsers, DimPosters, DimCampaigns, DimTerms}
}

// Valid reports whether d names a tracked dimension.
func Valid(d Dimension) bool {
	return d == DimUsers || d == DimPosters || d == DimCampaigns || d == DimTerms
}

// Resolver maps a raw key to a display name at query time (e.g. user ID →
// handle via the engine's copy-on-write directory). It must be safe to call
// concurrently and must not touch serving-path locks; returning "" falls
// back to the numeric key.
type Resolver func(key uint64) string

// Config sizes the tracker. Zero values take defaults.
type Config struct {
	// K is the per-dimension result capacity (default 32).
	K int
	// Epsilon/Delta size each sub-window's count-min sketch
	// (default 0.005 / 0.01 → width 544 × depth 5, ~21 KiB per
	// sub-window).
	Epsilon float64
	Delta   float64
	// Window is the sliding-window length (default 1m), split into
	// SubWindows ring'd sub-windows (default 6).
	Window     time.Duration
	SubWindows int
	// QueueCapacity bounds each dimension's record ring (default 16384,
	// rounded up to a power of two).
	QueueCapacity int
	// Metrics, when set, registers the caar_hot_* families.
	Metrics *obs.Registry
	// Now injects a clock for tests (default time.Now).
	Now func() time.Time
}

// HotKey is one reported heavy hitter. The true windowed count lies in
// [Count−ErrorBound, Count] (the lower edge with per-sub-window probability
// ≥ 1−δ; the upper edge always).
type HotKey struct {
	Key        string `json:"key"`
	Count      uint64 `json:"count"`
	ErrorBound uint64 `json:"error_bound"`
	// RawKey is the underlying sketch key (user/term ID, or the hash of a
	// string key) for programmatic consumers like the hot-partition
	// report; it is not part of the wire format.
	RawKey uint64 `json:"-"`
}

// DimReport is the query result for one dimension.
type DimReport struct {
	Dimension     string   `json:"dimension"`
	WindowSeconds float64  `json:"window_seconds"` // effective window queried
	WindowWeight  uint64   `json:"window_weight"`  // total weight in that window
	Events        uint64   `json:"events_total"`   // observations accepted (lifetime)
	Dropped       uint64   `json:"dropped_total"`  // observations dropped on full queue (lifetime)
	TrackedKeys   int      `json:"tracked_keys"`   // live candidate keys in the ring
	Keys          []HotKey `json:"keys"`
}

// dimension is one key space: a lock-free record ring feeding a windowed
// sketch guarded by mu. mu is only ever taken by the aggregator and by
// queries — never on the serving path.
type dimension struct {
	name   Dimension
	q      *queue
	events *obs.Counter
	drops  *obs.Counter

	tracked *obs.Gauge
	weight  *obs.Gauge
	share   *obs.Gauge

	mu      sync.Mutex
	win     *sketch.Windowed  // guarded by mu
	names   map[uint64]string // guarded by mu; candidate key → display name (string-keyed dims)
	resolve Resolver          // guarded by mu
}

// Tracker tracks heavy hitters across all dimensions. All methods are safe
// on a nil receiver (no-ops / zero reports), so callers can wire it
// unconditionally and disable it by leaving it nil.
type Tracker struct {
	now  func() time.Time
	dims [4]*dimension // users, posters, campaigns, terms
}

// New builds a tracker from cfg.
func New(cfg Config) (*Tracker, error) {
	if cfg.K <= 0 {
		cfg.K = 32
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 0.005
	}
	if cfg.Delta == 0 {
		cfg.Delta = 0.01
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.SubWindows <= 0 {
		cfg.SubWindows = 6
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 1 << 14
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	span := cfg.Window / time.Duration(cfg.SubWindows)
	if span <= 0 {
		return nil, fmt.Errorf("hotkey: window %v too short for %d sub-windows", cfg.Window, cfg.SubWindows)
	}

	var eventsV, dropsV *obs.CounterVec
	var trackedV, weightV, shareV *obs.GaugeVec
	if cfg.Metrics != nil {
		eventsV = cfg.Metrics.CounterVec("caar_hot_events_total", "Hot-key observations recorded, by dimension.", "dim")
		dropsV = cfg.Metrics.CounterVec("caar_hot_dropped_total", "Hot-key observations dropped on a full record queue, by dimension.", "dim")
		trackedV = cfg.Metrics.GaugeVec("caar_hot_tracked_keys", "Heavy-hitter candidate keys currently tracked, by dimension.", "dim")
		weightV = cfg.Metrics.GaugeVec("caar_hot_window_weight", "Total observation weight in the sliding window, by dimension.", "dim")
		shareV = cfg.Metrics.GaugeVec("caar_hot_top_share_ratio", "Fraction of window weight held by the hottest key, by dimension.", "dim")
	}

	t := &Tracker{now: cfg.Now}
	for i, name := range Dimensions() {
		win, err := sketch.NewWindowed(cfg.K, cfg.Epsilon, cfg.Delta, span, cfg.SubWindows)
		if err != nil {
			return nil, err
		}
		d := &dimension{
			name:  name,
			q:     newQueue(cfg.QueueCapacity),
			win:   win,
			names: make(map[uint64]string),
		}
		if cfg.Metrics != nil {
			d.events = eventsV.With(string(name))
			d.drops = dropsV.With(string(name))
			d.tracked = trackedV.With(string(name))
			d.weight = weightV.With(string(name))
			d.share = shareV.With(string(name))
		} else {
			d.events = &obs.Counter{}
			d.drops = &obs.Counter{}
			d.tracked = &obs.Gauge{}
			d.weight = &obs.Gauge{}
			d.share = &obs.Gauge{}
		}
		t.dims[i] = d
	}
	return t, nil
}

func (t *Tracker) dim(d Dimension) *dimension {
	if t == nil {
		return nil
	}
	switch d {
	case DimUsers:
		return t.dims[0]
	case DimPosters:
		return t.dims[1]
	case DimCampaigns:
		return t.dims[2]
	case DimTerms:
		return t.dims[3]
	}
	return nil
}

// SetResolver installs dim's query-time key→name resolver.
func (t *Tracker) SetResolver(dim Dimension, r Resolver) {
	d := t.dim(dim)
	if d == nil {
		return
	}
	d.mu.Lock()
	d.resolve = r
	d.mu.Unlock()
}

// RecordKey records weight against a raw key. Lock-free and non-blocking:
// safe from the serving path.
func (t *Tracker) RecordKey(dim Dimension, key uint64, weight uint64) {
	t.dim(dim).record(event{key: key, weight: weight})
}

// Record records weight against a string key (hashed; the name travels with
// the event for query-time display). Lock-free and non-blocking.
func (t *Tracker) Record(dim Dimension, name string, weight uint64) {
	t.dim(dim).record(event{key: hashName(name), weight: weight, name: name})
}

func (d *dimension) record(ev event) {
	if d == nil || ev.weight == 0 {
		return
	}
	if d.q.push(ev) {
		d.events.Inc()
	} else {
		d.drops.Inc()
	}
}

// hashName is FNV-1a 64, the key space for string-keyed dimensions.
func hashName(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// drainLocked folds every queued observation into the windowed sketch,
// prunes the name table to live candidates, and refreshes the gauges.
// Caller holds d.mu.
func (d *dimension) drainLocked(now time.Time) {
	changed := false
	for {
		ev, ok := d.q.pop()
		if !ok {
			break
		}
		d.win.Offer(ev.key, ev.weight, now)
		if ev.name != "" {
			d.names[ev.key] = ev.name
		}
		changed = true
	}
	if changed && len(d.names) > 0 {
		live := make(map[uint64]struct{})
		for _, k := range d.win.Candidates() {
			live[k] = struct{}{}
		}
		for k := range d.names {
			if _, ok := live[k]; !ok {
				delete(d.names, k)
			}
		}
	}
	d.tracked.Set(float64(len(d.win.Candidates())))
	total := d.win.Total(now, 0)
	d.weight.Set(float64(total))
	share := 0.0
	if top := d.win.TopK(now, 0); total > 0 && len(top) > 0 {
		share = float64(top[0].Count) / float64(total)
	}
	d.share.Set(share)
}

// Sync drains all record queues into the sketches immediately. Queries call
// it implicitly; tests and shutdown paths call it for determinism.
func (t *Tracker) Sync() {
	if t == nil {
		return
	}
	now := t.now()
	for _, d := range t.dims {
		d.mu.Lock()
		d.drainLocked(now)
		d.mu.Unlock()
	}
}

// Run drains the queues every 500ms until stop closes, keeping gauges and
// window decay fresh between queries. Optional: queries self-drain.
func (t *Tracker) Run(stop <-chan struct{}) {
	if t == nil {
		return
	}
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			t.Sync()
		}
	}
}

// Report returns the top-k heavy hitters of one dimension over the
// requested window (0 = the full ring). k ≤ 0 defaults to 10; k is capped
// at the tracker's capacity.
func (t *Tracker) Report(dim Dimension, k int, window time.Duration) (DimReport, error) {
	d := t.dim(dim)
	if d == nil {
		return DimReport{}, fmt.Errorf("hotkey: unknown dimension %q", dim)
	}
	if k <= 0 {
		k = 10
	}
	now := t.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drainLocked(now)
	top := d.win.TopK(now, window)
	if len(top) > k {
		top = top[:k]
	}
	bound := d.win.ErrorBound(now, window)
	rep := DimReport{
		Dimension:     string(dim),
		WindowSeconds: d.win.CoveredSpan(window).Seconds(),
		WindowWeight:  d.win.Total(now, window),
		Events:        d.events.Value(),
		Dropped:       d.drops.Value(),
		TrackedKeys:   len(d.win.Candidates()),
		Keys:          make([]HotKey, 0, len(top)),
	}
	for _, c := range top {
		rep.Keys = append(rep.Keys, HotKey{Key: d.displayLocked(c.Key), Count: c.Count, ErrorBound: bound, RawKey: c.Key})
	}
	return rep, nil
}

func (d *dimension) displayLocked(key uint64) string {
	if n, ok := d.names[key]; ok {
		return n
	}
	if d.resolve != nil {
		if n := d.resolve(key); n != "" {
			return n
		}
	}
	return "key:" + strconv.FormatUint(key, 10)
}
