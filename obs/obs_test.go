package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact Prometheus text output for one of
// each metric type: HELP/TYPE headers, label rendering and escaping,
// cumulative histogram buckets ending at +Inf, and _sum/_count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()

	c := r.CounterVec("test_requests_total", "Requests by endpoint.", "endpoint", "class")
	c.With("/v1/recommendations", "2xx").Add(3)
	c.With("/v1/posts", "5xx").Inc()

	g := r.Gauge("test_inflight", "In-flight requests.")
	g.Set(2)

	// Label escaping: backslash, quote, newline.
	e := r.CounterVec("test_escapes_total", `Help with \ and "quotes"`, "path")
	e.With("a\\b\"c\nd").Inc()

	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // bucket le=0.001
	h.Observe(0.05)   // bucket le=0.1
	h.Observe(5)      // +Inf bucket only

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	want := `# HELP test_escapes_total Help with \\ and "quotes"
# TYPE test_escapes_total counter
test_escapes_total{path="a\\b\"c\nd"} 1
# HELP test_inflight In-flight requests.
# TYPE test_inflight gauge
test_inflight 2
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.001"} 1
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 5.0505
test_latency_seconds_count 3
# HELP test_requests_total Requests by endpoint.
# TYPE test_requests_total counter
test_requests_total{endpoint="/v1/posts",class="5xx"} 1
test_requests_total{endpoint="/v1/recommendations",class="2xx"} 3
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestGaugeAndCounterFuncs(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("test_sampled", "Sampled gauge.", func() float64 { return 7.5 })
	r.CounterFunc("test_sampled_total", "Sampled counter.", func() uint64 { return 42 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_sampled gauge\ntest_sampled 7.5\n",
		"# TYPE test_sampled_total counter\ntest_sampled_total 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRuntimeGauges: RegisterRuntime exposes the four Go-runtime health
// gauges with sane (non-negative, mostly positive) values, sampled at
// scrape time.
func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	kinds := map[string]string{
		"caar_go_goroutines":             "gauge",
		"caar_go_gomaxprocs":             "gauge",
		"caar_go_heap_inuse_bytes":       "gauge",
		"caar_go_gc_pause_seconds_total": "counter", // cumulative pause: a float counter, not a gauge
	}
	for fam, kind := range kinds {
		if !strings.Contains(out, "# TYPE "+fam+" "+kind) {
			t.Errorf("runtime family %q missing from exposition:\n%s", fam, out)
			continue
		}
		var v float64
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, fam+" ") {
				if _, err := fmt.Sscanf(line, fam+" %g", &v); err != nil {
					t.Errorf("unparsable sample line %q: %v", line, err)
				}
			}
		}
		if v < 0 {
			t.Errorf("%s = %g, want >= 0", fam, v)
		}
		if (fam == "caar_go_goroutines" || fam == "caar_go_gomaxprocs" ||
			fam == "caar_go_heap_inuse_bytes") && v == 0 {
			t.Errorf("%s = 0, want > 0 in a running process", fam)
		}
	}
}

// TestHistogramExemplars: AttachExemplar annotates (without re-counting)
// the bucket an observation fell into; Exemplars returns them bucket-
// ordered and SlowestExemplar picks the highest annotated bucket.
func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_ex_seconds", "h", []float64{0.001, 0.01, 0.1})
	if h.Exemplars() != nil {
		t.Error("fresh histogram must have no exemplars")
	}

	h.Observe(0.0005)
	h.AttachExemplar(0.0005, "trace-fast")
	h.Observe(5)
	h.AttachExemplar(5, "trace-slow")
	h.AttachExemplar(0.0005, "") // empty trace ID is a no-op

	if h.Count() != 2 {
		t.Fatalf("AttachExemplar changed the observation count: %d", h.Count())
	}
	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("Exemplars = %+v, want 2 entries", ex)
	}
	if ex[0].TraceID != "trace-fast" || ex[0].BucketLE != "0.001" {
		t.Errorf("fastest exemplar = %+v", ex[0])
	}
	if ex[1].TraceID != "trace-slow" || ex[1].BucketLE != "+Inf" {
		t.Errorf("slowest exemplar = %+v", ex[1])
	}
	slow, found := h.SlowestExemplar()
	if !found || slow.TraceID != "trace-slow" || slow.Value != 5 {
		t.Errorf("SlowestExemplar = %+v found=%v", slow, found)
	}
	// Replacing the same bucket keeps the newest annotation.
	h.AttachExemplar(6, "trace-slower")
	if slow, _ := h.SlowestExemplar(); slow.TraceID != "trace-slower" {
		t.Errorf("bucket exemplar not replaced: %+v", slow)
	}
}

func TestGetOrCreateIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "h")
	b := r.Counter("test_total", "h")
	if a != b {
		t.Error("re-registering a counter returned a different instance")
	}
	h1 := r.HistogramVec("test_hist", "h", nil, "stage")
	h2 := r.HistogramVec("test_hist", "h", nil, "stage")
	if h1.With("x") != h2.With("x") {
		t.Error("re-registering a histogram vec returned different series")
	}

	defer func() {
		if recover() == nil {
			t.Error("re-registering with a different type did not panic")
		}
	}()
	r.Gauge("test_total", "h")
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.Observe(1)   // le=1 is inclusive
	h.Observe(1.5) // le=2
	h.Observe(4)   // le=4
	h.Observe(4.1) // +Inf
	want := []uint64{1, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: got %d, want %d", i, got, w)
		}
	}
	if h.Count() != 4 {
		t.Errorf("count %d, want 4", h.Count())
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(50e-6, 2, 4)
	want := []float64{50e-6, 100e-6, 200e-6, 400e-6}
	for i := range want {
		if diff := b[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("bucket %d: got %g, want %g", i, b[i], want[i])
		}
	}
}

// TestConcurrentUpdates hammers every metric type from many goroutines;
// run under -race this is the registry's data-race test, and the final
// counts double as a lost-update check.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c_total", "")
	cv := r.CounterVec("test_cv_total", "", "k")
	g := r.Gauge("test_g", "")
	h := r.HistogramVec("test_h_seconds", "", nil, "stage")

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	keys := []string{"a", "b", "c"}
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				cv.With(keys[i%len(keys)]).Inc()
				g.Add(1)
				h.With(keys[(i+wk)%len(keys)]).ObserveDuration(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					// Concurrent scrape while updates fly.
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(wk)
	}
	wg.Wait()

	if c.Value() != workers*iters {
		t.Errorf("counter lost updates: %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Errorf("gauge lost updates: %g, want %d", g.Value(), workers*iters)
	}
	var total uint64
	for _, k := range keys {
		total += h.With(k).Count()
	}
	if total != workers*iters {
		t.Errorf("histogram lost updates: %d, want %d", total, workers*iters)
	}
}
