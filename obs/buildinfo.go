package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Build identity. Capture bundles and bench trajectories are only useful if
// a result can be attributed to the build that produced it, so the module
// version and VCS state read from the binary's embedded build info are
// exposed in three places off this one struct: /v1/statusz, every capture
// bundle's meta.json, and the caar_build_info metric.

// BuildInfo identifies the running binary.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`  // main module path
	Version   string `json:"version,omitempty"` // module version ("(devel)" for source builds)
	VCSRev    string `json:"vcs_revision,omitempty"`
	VCSTime   string `json:"vcs_time,omitempty"`
	VCSDirty  bool   `json:"vcs_dirty,omitempty"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build identity, read once from
// runtime/debug.ReadBuildInfo. Binaries built without module support (rare:
// some test harnesses) get the Go version and platform only.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
		}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Module = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.VCSRev = s.Value
			case "vcs.time":
				buildInfo.VCSTime = s.Value
			case "vcs.modified":
				buildInfo.VCSDirty = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// ShortRev returns the first 12 characters of the VCS revision, or "" when
// the binary carries no VCS stamp.
func (b BuildInfo) ShortRev() string {
	if len(b.VCSRev) > 12 {
		return b.VCSRev[:12]
	}
	return b.VCSRev
}

// RegisterBuildInfo exposes the build identity as the conventional
// constant-1 info gauge, so dashboards can join any series against the
// build that produced it. Idempotent across servers sharing a registry.
func RegisterBuildInfo(reg *Registry) {
	b := Build()
	version := b.Version
	if version == "" {
		version = "unknown"
	}
	rev := b.ShortRev()
	if rev == "" {
		rev = "unknown"
	}
	reg.GaugeVec("caar_build_info",
		"Build identity of the running binary; constant 1.",
		"version", "revision", "go_version").
		With(version, rev, b.GoVersion).Set(1)
}
