package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntime installs scrape-time collectors over the Go runtime's
// own health signals: goroutine count, heap in use, cumulative GC pause
// and GOMAXPROCS. All four read their value at scrape time (the pause
// total is a float counter, the rest are gauges) — nothing is recorded
// between scrapes, so the instrumentation is free on the serving path.
//
// ReadMemStats stops the world, so the memory-backed gauges share one
// sample cached for a short interval; a scrape reading both heap and GC
// pause pays for at most one stop-the-world.
func RegisterRuntime(r *Registry) {
	var (
		mu   sync.Mutex
		ms   runtime.MemStats
		last time.Time
	)
	memstats := func() runtime.MemStats {
		mu.Lock()
		defer mu.Unlock()
		if last.IsZero() || time.Since(last) > 250*time.Millisecond {
			runtime.ReadMemStats(&ms)
			last = time.Now()
		}
		return ms
	}

	r.GaugeFunc("caar_go_goroutines",
		"Goroutines at scrape time.", func() float64 {
			return float64(runtime.NumGoroutine())
		})
	r.GaugeFunc("caar_go_gomaxprocs",
		"GOMAXPROCS at scrape time.", func() float64 {
			return float64(runtime.GOMAXPROCS(0))
		})
	r.GaugeFunc("caar_go_heap_inuse_bytes",
		"Bytes in in-use heap spans.", func() float64 {
			return float64(memstats().HeapInuse)
		})
	r.CounterFloatFunc("caar_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause since process start.", func() float64 {
			return float64(memstats().PauseTotalNs) / 1e9
		})
}
