package obs

// Scrape-time histogram snapshots. The SLO layer (obs/slo) computes
// burn rates from periodic point-in-time copies of the serving histograms:
// a snapshot taken every sampling tick, differenced against the snapshot
// closest to the far edge of each alerting window. Exposing the copy here —
// instead of letting the SLO layer parse the Prometheus text exposition —
// keeps the computation exact and allocation-light.

// HistogramSnapshot is a point-in-time copy of a histogram's counters.
// Buckets are per-bucket (non-cumulative) counts; Buckets[len(Bounds)] is
// the +Inf bucket. A snapshot taken concurrently with observations may see
// a Count that differs from the bucket sum by in-flight samples, the same
// tolerance the Prometheus exposition has.
type HistogramSnapshot struct {
	Bounds  []float64 // ascending upper bounds; +Inf implicit
	Buckets []uint64  // len(Bounds)+1 per-bucket counts
	Count   uint64
	Sum     float64
}

// Snapshot copies the histogram's current bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  h.bounds, // immutable after construction
		Buckets: make([]uint64, len(h.counts)),
		Count:   h.Count(),
		Sum:     h.Sum(),
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// CountAtOrBelow returns the cumulative number of observations that landed
// in buckets with upper bound <= le. Because observations are quantized to
// bucket bounds, le should itself be one of Bounds; an arbitrary le counts
// every bucket whose bound does not exceed it.
func (s HistogramSnapshot) CountAtOrBelow(le float64) uint64 {
	var cum uint64
	for i, b := range s.Bounds {
		if b > le {
			break
		}
		cum += s.Buckets[i]
	}
	return cum
}
