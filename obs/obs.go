// Package obs is the runtime observability spine of the recommender: a
// dependency-free, concurrency-safe metrics registry with Prometheus
// text-format exposition.
//
// It exists because the repo's `metrics` package is an *offline* evaluation
// toolkit (precision/recall, post-hoc histograms consumed by the experiment
// harness), while a serving system needs *online* instrumentation: atomic
// counters and gauges updated on the hot path, fixed-bucket histograms
// scraped by Prometheus, and sampled gauges reading live engine state.
//
// Metric types:
//
//   - Counter / CounterVec — monotonically increasing uint64 counts.
//   - Gauge / GaugeFunc — a settable float64, or one sampled at scrape time.
//   - Histogram / HistogramVec — fixed exponential buckets, atomic updates,
//     exposed with cumulative buckets, +Inf, _sum and _count.
//
// Registration is get-or-create: asking for an existing name with the same
// type returns the existing collector, so several subsystems can share one
// registry without coordination. Asking with a different type panics — that
// is a programming error, not a runtime condition.
//
// All times are recorded in seconds (float64), the Prometheus convention.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metricKind discriminates collector types at registration.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindCounterFunc
	kindCounterFloatFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc, kindCounterFloatFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// family is one registered metric name: its metadata plus every labeled
// series under it. A scalar metric is a family with one unlabeled series.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string  // label names; empty for scalar metrics
	bounds []float64 // histogram upper bounds (families of kindHistogram)

	mu     sync.RWMutex
	series map[string]any // label-value key → *Counter | *Gauge | *Histogram
	order  []string       // insertion-ordered keys (sorted at exposition)

	// sampled collectors (scalar only).
	gaugeFn        func() float64
	counterFn      func() uint64
	counterFloatFn func() float64
}

// Registry holds named metric families. The zero value is not usable; use
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family for name, creating it with the given shape on
// first registration. A name re-registered with a different kind or label
// arity panics: two subsystems disagreeing about what a metric *is* must
// fail loudly at startup, not export garbage.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	if name == "" {
		panic("obs: metric with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s/%d labels (was %s/%d)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		series: make(map[string]any),
	}
	r.families[name] = f
	return f
}

// seriesKey joins label values into a map key. Label values may contain any
// bytes; \xff is vanishingly unlikely in real label values and a collision
// would only merge two series, never corrupt memory.
func seriesKey(values []string) string {
	if len(values) == 1 {
		return values[0]
	}
	return strings.Join(values, "\xff")
}

// child returns the series for the given label values, creating it with
// mk() on first use.
func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	c, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.series[key]; ok {
		return c
	}
	c = mk()
	f.series[key] = c
	f.order = append(f.order, key)
	return c
}

// ---------------------------------------------------------------- Counter

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers (or returns) a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, kindCounter, nil, nil)
	return f.child(nil, func() any { return new(Counter) }).(*Counter)
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec without labels; use Counter")
	}
	return &CounterVec{f: r.lookup(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on first
// use. The returned pointer may be cached by hot paths.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return new(Counter) }).(*Counter)
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for counts already tracked by an existing atomic elsewhere.
// Re-registering the same name replaces the function (last wins).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	f := r.lookup(name, help, kindCounterFunc, nil, nil)
	f.mu.Lock()
	f.counterFn = fn
	f.mu.Unlock()
}

// CounterFloatFunc is CounterFunc for cumulative quantities that are
// naturally fractional (seconds of GC pause, ratios of budgets): the value
// must still be monotone non-decreasing, it is just exposed as a float.
// Re-registering the same name replaces the function (last wins).
func (r *Registry) CounterFloatFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, kindCounterFloatFunc, nil, nil)
	f.mu.Lock()
	f.counterFloatFn = fn
	f.mu.Unlock()
}

// ------------------------------------------------------------------ Gauge

// Gauge is a settable float64 value. All methods are safe for concurrent
// use.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative to subtract) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers (or returns) a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, kindGauge, nil, nil)
	return f.child(nil, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec without labels; use Gauge")
	}
	return &GaugeVec{f: r.lookup(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers a gauge sampled from fn at scrape time — the right
// tool for live state (index sizes, window occupancy, budget remaining)
// that would be wasteful to mirror into a stored gauge on every mutation.
// Re-registering the same name replaces the function (last wins).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, kindGaugeFunc, nil, nil)
	f.mu.Lock()
	f.gaugeFn = fn
	f.mu.Unlock()
}

// -------------------------------------------------------------- Histogram

// Histogram counts observations into fixed buckets with exponential upper
// bounds, tracking an exact sum and count. Observe is wait-free except for
// the CAS on the sum; a scrape concurrent with observations may see a sum
// and count that differ by in-flight samples, which Prometheus tolerates.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64

	// exemplars (see exemplar.go): lazily allocated slot per bucket holding
	// the latest attached exemplar (empty TraceID = unset). A slice, not a
	// map, so attaching on the hot serving path is a mutex-guarded value
	// copy with no per-attach allocation.
	exMu sync.Mutex
	ex   []BucketExemplar
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// bucketIndex returns the index of the bucket v falls into: the first bound
// >= v, or the +Inf bucket.
func (h *Histogram) bucketIndex(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExpBuckets returns n histogram upper bounds growing exponentially from
// min by factor: min, min·factor, min·factor², …
func ExpBuckets(min, factor float64, n int) []float64 {
	if min <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants min > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := min
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default request-latency layout: 20 exponential
// buckets from 50 µs to ~26 s, matched to the µs–s spread between an
// in-memory top-k hit and a fsync-bound write under load.
var LatencyBuckets = ExpBuckets(50e-6, 2, 20)

// Histogram registers (or returns) a scalar histogram. bounds must be
// ascending; nil uses LatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	checkBounds(name, bounds)
	f := r.lookup(name, help, kindHistogram, nil, bounds)
	return f.child(nil, func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec without labels; use Histogram")
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	checkBounds(name, bounds)
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

func checkBounds(name string, bounds []float64) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	if len(bounds) > 0 && math.IsInf(bounds[len(bounds)-1], +1) {
		panic(fmt.Sprintf("obs: histogram %q must not include +Inf explicitly", name))
	}
}

// sortedFamilies returns families in name order (stable exposition).
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
