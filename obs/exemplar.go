package obs

import "time"

// Histogram exemplars link aggregate latency buckets back to individual
// traced requests: when the trace store keeps a request's flight record,
// the engine attaches the trace ID to the bucket each stage span landed in.
// A spike in the slowest buckets then carries the ID of a concrete captured
// trace to open, instead of only a count.
//
// The Prometheus 0.0.4 text format cannot carry exemplars on sample lines,
// so they are not part of WritePrometheus output; the serving layer exposes
// them through its trace-listing endpoint instead.

// BucketExemplar is the latest exemplar attached to one histogram bucket.
type BucketExemplar struct {
	// BucketLE is the bucket's upper bound rendered as in the exposition
	// ("0.001", "+Inf") — a string because JSON cannot encode +Inf.
	BucketLE string  `json:"bucket_le"`
	Value    float64 `json:"value"`
	TraceID  string  `json:"trace_id"`
	UnixNano int64   `json:"unix_nano"`
}

// AttachExemplar links traceID to the bucket that v falls into, replacing
// that bucket's previous exemplar. It does not count v as an observation —
// the observation was already recorded by Observe; this only annotates it.
// Safe for concurrent use; a no-op for an empty traceID.
func (h *Histogram) AttachExemplar(v float64, traceID string) {
	if traceID == "" {
		return
	}
	idx := h.bucketIndex(v)
	le := "+Inf"
	if idx < len(h.bounds) {
		le = formatFloat(h.bounds[idx])
	}
	h.exMu.Lock()
	if h.ex == nil {
		h.ex = make([]BucketExemplar, len(h.counts))
	}
	h.ex[idx] = BucketExemplar{BucketLE: le, Value: v, TraceID: traceID, UnixNano: time.Now().UnixNano()}
	h.exMu.Unlock()
}

// Exemplars returns the attached exemplars ordered by bucket (slowest
// last), or nil when none were attached.
func (h *Histogram) Exemplars() []BucketExemplar {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	var out []BucketExemplar
	for _, ex := range h.ex {
		if ex.TraceID != "" {
			out = append(out, ex)
		}
	}
	return out
}

// SlowestExemplar returns the exemplar of the highest annotated bucket —
// the captured trace closest to the histogram's tail — or false when none.
func (h *Histogram) SlowestExemplar() (BucketExemplar, bool) {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	for i := len(h.ex) - 1; i >= 0; i-- {
		if h.ex[i].TraceID != "" {
			return h.ex[i], true
		}
	}
	return BucketExemplar{}, false
}
