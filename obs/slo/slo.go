// Package slo is the self-observing half of the observability layer: it
// turns the serving histograms the rest of the system already maintains
// into latency/error objectives, multi-window burn rates, and an anomaly
// trigger — without adding anything to the request path.
//
// # Model
//
// An Objective declares what "good" means for one endpoint: either a
// latency bound (requests at or under the threshold are good) or an
// availability bound (non-5xx responses are good), plus a target fraction
// such as 0.99. The error budget is 1 - target.
//
// A Tracker samples each objective's cumulative (good, total) counters on a
// fixed cadence — scrape-time snapshots of the existing exp-bucket
// histograms, so the serving path is never touched — and keeps a ring of
// samples long enough to cover the slow window. The burn rate over a
// window w is
//
//	burn(w) = badFraction(w) / (1 - target)
//
// where badFraction is computed from the difference between the newest
// sample and the sample at the far edge of w. burn = 1 means the error
// budget is being consumed exactly at the sustainable rate; burn = 14.4
// (the default trip threshold, from the SRE workbook's page-severity
// tier) exhausts a 30-day budget in ~50 hours.
//
// The watchdog trips when BOTH the fast (default 5m) and slow (default 1h)
// windows burn above the threshold: the fast window makes detection quick,
// the slow window keeps a brief blip from paging. A trip invokes OnTrip —
// wired by adserver to the capture recorder (obs/capture) so the profiles
// are taken while the anomaly is still happening — at most once per
// cooldown per objective.
//
// # Quantization
//
// Latency objectives are evaluated against histogram buckets, so the
// effective threshold is the largest bucket bound at or under the declared
// one (the strict direction: quantization can only make the objective
// tighter, never silently looser). Status reports both values.
//
// # Counter resets
//
// Sources are cumulative. If a sample observes a count lower than its
// predecessor — an engine swap, a test re-registering collectors — the ring
// resets and the windows rebuild from the new baseline instead of
// reporting enormous negative deltas.
package slo

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"caar/obs"
)

// Kind discriminates what an objective counts as a good event.
type Kind string

const (
	// KindLatency counts requests at or under the threshold as good.
	KindLatency Kind = "latency"
	// KindAvailability counts non-5xx responses as good.
	KindAvailability Kind = "availability"
)

// Objective declares an SLO for one endpoint.
type Objective struct {
	// Name labels the objective in metrics and reports; unique per tracker.
	Name string
	// Endpoint is the serving path the objective watches.
	Endpoint string
	Kind     Kind
	// Threshold is the latency bound (KindLatency only).
	Threshold time.Duration
	// Target is the good fraction the SLO promises, in (0, 1).
	Target float64
}

func (o Objective) validate() error {
	if o.Name == "" || o.Endpoint == "" {
		return fmt.Errorf("slo: objective needs a name and an endpoint")
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("slo: objective %q target %v outside (0, 1)", o.Name, o.Target)
	}
	switch o.Kind {
	case KindLatency:
		if o.Threshold <= 0 {
			return fmt.Errorf("slo: latency objective %q needs a positive threshold", o.Name)
		}
	case KindAvailability:
	default:
		return fmt.Errorf("slo: objective %q has unknown kind %q", o.Name, o.Kind)
	}
	return nil
}

// Source yields an objective's cumulative good/total event counts. Called
// once per sampling tick; must be safe for concurrent use and cheap.
type Source func() (good, total uint64)

// LatencySource adapts a latency histogram into a Source: total is the
// observation count, good the observations in buckets at or under the
// effective threshold. The returned float64 is that effective threshold in
// seconds — the largest bucket bound not exceeding the request; when the
// threshold sits under every bound, the first bound is used (the least-
// loose option available).
func LatencySource(h *obs.Histogram, threshold time.Duration) (Source, float64) {
	bounds := h.Snapshot().Bounds
	eff := quantizeThreshold(bounds, threshold.Seconds())
	return func() (good, total uint64) {
		s := h.Snapshot()
		return s.CountAtOrBelow(eff), s.Count
	}, eff
}

func quantizeThreshold(bounds []float64, want float64) float64 {
	if len(bounds) == 0 {
		return want
	}
	eff := bounds[0]
	for _, b := range bounds {
		if b > want {
			break
		}
		eff = b
	}
	return eff
}

// AvailabilitySource adapts cumulative total/error counters into a Source.
// good is clamped at zero if errors momentarily outrun the total (the two
// reads are not atomic with each other).
func AvailabilitySource(total, errs func() uint64) Source {
	return func() (good, tot uint64) {
		t, e := total(), errs()
		if e > t {
			e = t
		}
		return t - e, t
	}
}

// Trip describes one watchdog firing.
type Trip struct {
	Objective string    `json:"objective"`
	Endpoint  string    `json:"endpoint"`
	At        time.Time `json:"at"`
	FastBurn  float64   `json:"fast_burn"`
	SlowBurn  float64   `json:"slow_burn"`
	Threshold float64   `json:"threshold"`
}

// Config shapes a Tracker. Zero values take the documented defaults.
type Config struct {
	FastWindow    time.Duration // default 5m
	SlowWindow    time.Duration // default 1h
	SampleEvery   time.Duration // default 10s
	BurnThreshold float64       // default 14.4
	// MinEvents is the minimum event delta a window needs before it can
	// contribute to a trip; keeps one bad request at startup from firing
	// the watchdog. Default 20.
	MinEvents uint64
	// TripCooldown bounds how often one objective may trip. Default 10m.
	TripCooldown time.Duration
	// OnTrip is invoked synchronously from Sample when an objective's fast
	// AND slow burn rates cross BurnThreshold. Wire slow work (profile
	// capture) through a goroutine.
	OnTrip func(Trip)
	// Now is the clock; tests substitute a fake. Default time.Now.
	Now func() time.Time
}

func (c *Config) fill() {
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 10 * time.Second
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 14.4
	}
	if c.MinEvents == 0 {
		c.MinEvents = 20
	}
	if c.TripCooldown <= 0 {
		c.TripCooldown = 10 * time.Minute
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// sample is one cumulative reading.
type sample struct {
	t           time.Time
	good, total uint64
}

// objectiveState is an objective plus its sample ring and metric handles.
type objectiveState struct {
	obj          Objective
	effThreshold float64 // quantized latency bound in seconds; 0 for availability
	src          Source

	ring      []sample // chronological; trimmed to the slow window
	trips     uint64
	lastTrip  time.Time
	breaching bool

	fastBurnG, slowBurnG     *obs.Gauge
	fastBudgetG, slowBudgetG *obs.Gauge
	breachG                  *obs.Gauge
	tripsC                   *obs.Counter
}

// Tracker samples objectives and computes multi-window burn rates. All
// methods are safe for concurrent use; Sample and Status serialize on one
// mutex (they run a few times a minute, off the serving path).
type Tracker struct {
	cfg Config

	mu   sync.Mutex
	objs []*objectiveState

	burnVec   *obs.GaugeVec
	budgetVec *obs.GaugeVec
	breachVec *obs.GaugeVec
	targetVec *obs.GaugeVec
	tripsVec  *obs.CounterVec
	samples   *obs.Counter
}

const (
	windowFast = "fast"
	windowSlow = "slow"
)

// NewTracker creates a tracker and registers the caar_slo_ metric families
// on reg (a private registry when nil).
func NewTracker(cfg Config, reg *obs.Registry) *Tracker {
	cfg.fill()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	t := &Tracker{
		cfg: cfg,
		burnVec: reg.GaugeVec("caar_slo_burn_rate_ratio",
			"Error-budget burn rate per objective and window; 1 consumes the budget exactly at the sustainable rate.",
			"objective", "window"),
		budgetVec: reg.GaugeVec("caar_slo_budget_remaining_ratio",
			"Fraction of the window's error budget left; negative when overspent.",
			"objective", "window"),
		breachVec: reg.GaugeVec("caar_slo_breaching",
			"1 while both burn windows exceed the trip threshold.", "objective"),
		targetVec: reg.GaugeVec("caar_slo_target_ratio",
			"Declared SLO target per objective.", "objective"),
		tripsVec: reg.CounterVec("caar_slo_trips_total",
			"Watchdog trips per objective (rate-limited by the cooldown).", "objective"),
		samples: reg.Counter("caar_slo_samples_total",
			"Sampling ticks taken across all objectives."),
	}
	return t
}

// Add registers an objective with its count source. The effective latency
// threshold (bucket-quantized) should come from LatencySource; pass 0 for
// availability objectives.
func (t *Tracker) Add(obj Objective, src Source, effThreshold float64) error {
	if err := obj.validate(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, st := range t.objs {
		if st.obj.Name == obj.Name {
			return fmt.Errorf("slo: duplicate objective %q", obj.Name)
		}
	}
	st := &objectiveState{
		obj:          obj,
		effThreshold: effThreshold,
		src:          src,
		fastBurnG:    t.burnVec.With(obj.Name, windowFast),
		slowBurnG:    t.burnVec.With(obj.Name, windowSlow),
		fastBudgetG:  t.budgetVec.With(obj.Name, windowFast),
		slowBudgetG:  t.budgetVec.With(obj.Name, windowSlow),
		breachG:      t.breachVec.With(obj.Name),
		tripsC:       t.tripsVec.With(obj.Name),
	}
	st.fastBudgetG.Set(1)
	st.slowBudgetG.Set(1)
	t.targetVec.With(obj.Name).Set(obj.Target)
	t.objs = append(t.objs, st)
	return nil
}

// Run samples on the configured cadence until ctx is done. Call from a
// dedicated goroutine.
func (t *Tracker) Run(done <-chan struct{}) {
	ticker := time.NewTicker(t.cfg.SampleEvery)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
			t.Sample(t.cfg.Now())
		}
	}
}

// Sample takes one reading of every objective, updates the burn-rate
// metrics, and fires OnTrip for objectives whose fast and slow windows both
// burn above the threshold (subject to the cooldown). Exported so tests and
// harnesses can drive the tracker with a synthetic clock.
func (t *Tracker) Sample(now time.Time) {
	var trips []Trip
	t.mu.Lock()
	t.samples.Inc()
	for _, st := range t.objs {
		good, total := st.src()
		st.push(now, good, total, t.cfg.SlowWindow)

		fast := st.window(now, t.cfg.FastWindow, st.obj.Target)
		slow := st.window(now, t.cfg.SlowWindow, st.obj.Target)
		st.fastBurnG.Set(fast.BurnRate)
		st.slowBurnG.Set(slow.BurnRate)
		st.fastBudgetG.Set(fast.BudgetRemaining)
		st.slowBudgetG.Set(slow.BudgetRemaining)

		eligible := fast.events() >= t.cfg.MinEvents && slow.events() >= t.cfg.MinEvents
		st.breaching = eligible &&
			fast.BurnRate >= t.cfg.BurnThreshold && slow.BurnRate >= t.cfg.BurnThreshold
		if st.breaching {
			st.breachG.Set(1)
			if now.Sub(st.lastTrip) >= t.cfg.TripCooldown {
				st.lastTrip = now
				st.trips++
				st.tripsC.Inc()
				trips = append(trips, Trip{
					Objective: st.obj.Name,
					Endpoint:  st.obj.Endpoint,
					At:        now,
					FastBurn:  fast.BurnRate,
					SlowBurn:  slow.BurnRate,
					Threshold: t.cfg.BurnThreshold,
				})
			}
		} else {
			st.breachG.Set(0)
		}
	}
	onTrip := t.cfg.OnTrip
	t.mu.Unlock()

	if onTrip != nil {
		for _, trip := range trips {
			onTrip(trip)
		}
	}
}

// push appends a reading, resetting the ring on counter regression and
// trimming samples older than the slow window (plus one baseline sample at
// the far edge, which window() differences against).
func (st *objectiveState) push(now time.Time, good, total uint64, slowWindow time.Duration) {
	if n := len(st.ring); n > 0 {
		last := st.ring[n-1]
		if total < last.total || good < last.good {
			st.ring = st.ring[:0] // counter reset (restart / collector swap)
		}
	}
	st.ring = append(st.ring, sample{t: now, good: good, total: total})
	edge := now.Add(-slowWindow)
	// Keep the newest sample at or before the edge as the slow baseline.
	cut := 0
	for i, s := range st.ring {
		if s.t.Before(edge) || s.t.Equal(edge) {
			cut = i
		} else {
			break
		}
	}
	if cut > 0 {
		st.ring = append(st.ring[:0], st.ring[cut:]...)
	}
}

// WindowStatus is the burn computation over one alerting window.
type WindowStatus struct {
	Window          string  `json:"window"` // "fast" or "slow"
	Seconds         float64 `json:"seconds"`
	Good            uint64  `json:"good"`
	Total           uint64  `json:"total"`
	BadRatio        float64 `json:"bad_ratio"`
	BurnRate        float64 `json:"burn_rate"`
	BudgetRemaining float64 `json:"budget_remaining"`
	// Complete reports whether the samples fully cover the window; false
	// early in a process's life, when the burn is computed over the data
	// available so far.
	Complete bool `json:"complete"`
}

func (w WindowStatus) events() uint64 { return w.Total }

// window differences the newest sample against the one at the window's far
// edge. An empty or single-sample ring yields zero burn and Complete=false
// — no data is not an anomaly.
func (st *objectiveState) window(now time.Time, w time.Duration, target float64) WindowStatus {
	ws := WindowStatus{Seconds: w.Seconds(), BudgetRemaining: 1}
	if len(st.ring) < 2 {
		return ws
	}
	cur := st.ring[len(st.ring)-1]
	edge := now.Add(-w)
	base := st.ring[0]
	for _, s := range st.ring[1:] {
		if s.t.After(edge) {
			break
		}
		base = s
	}
	if !base.t.After(edge) {
		ws.Complete = true
	}
	if base.t.Equal(cur.t) {
		return ws
	}
	total := cur.total - base.total
	good := cur.good - base.good
	if good > total { // concurrent-read skew
		good = total
	}
	ws.Good, ws.Total = good, total
	if total == 0 {
		return ws
	}
	ws.BadRatio = float64(total-good) / float64(total)
	budget := 1 - target
	ws.BurnRate = ws.BadRatio / budget
	ws.BudgetRemaining = 1 - ws.BurnRate
	return ws
}

// ObjectiveStatus is one objective's entry in the /v1/slo report.
type ObjectiveStatus struct {
	Name                      string         `json:"name"`
	Endpoint                  string         `json:"endpoint"`
	Kind                      Kind           `json:"kind"`
	Target                    float64        `json:"target"`
	ThresholdSeconds          float64        `json:"threshold_seconds,omitempty"`
	EffectiveThresholdSeconds float64        `json:"effective_threshold_seconds,omitempty"`
	Windows                   []WindowStatus `json:"windows"`
	Breaching                 bool           `json:"breaching"`
	Trips                     uint64         `json:"trips"`
	LastTripAt                *time.Time     `json:"last_trip_at,omitempty"`
}

// Status is the full /v1/slo document.
type Status struct {
	SampledAt     time.Time         `json:"sampled_at"`
	BurnThreshold float64           `json:"burn_threshold"`
	FastWindow    string            `json:"fast_window"`
	SlowWindow    string            `json:"slow_window"`
	Objectives    []ObjectiveStatus `json:"objectives"`
}

// Status reports every objective's windows as of the latest sample. It
// does not re-read sources; call Sample first for a fresh reading.
func (t *Tracker) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := Status{
		BurnThreshold: t.cfg.BurnThreshold,
		FastWindow:    t.cfg.FastWindow.String(),
		SlowWindow:    t.cfg.SlowWindow.String(),
	}
	for _, st := range t.objs {
		if n := len(st.ring); n > 0 && st.ring[n-1].t.After(out.SampledAt) {
			out.SampledAt = st.ring[n-1].t
		}
	}
	for _, st := range t.objs {
		now := out.SampledAt
		if now.IsZero() && len(st.ring) > 0 {
			now = st.ring[len(st.ring)-1].t
		}
		fast := st.window(now, t.cfg.FastWindow, st.obj.Target)
		fast.Window = windowFast
		slow := st.window(now, t.cfg.SlowWindow, st.obj.Target)
		slow.Window = windowSlow
		os := ObjectiveStatus{
			Name:                      st.obj.Name,
			Endpoint:                  st.obj.Endpoint,
			Kind:                      st.obj.Kind,
			Target:                    st.obj.Target,
			ThresholdSeconds:          st.obj.Threshold.Seconds(),
			EffectiveThresholdSeconds: st.effThreshold,
			Windows:                   []WindowStatus{fast, slow},
			Breaching:                 st.breaching,
			Trips:                     st.trips,
		}
		if !st.lastTrip.IsZero() {
			lt := st.lastTrip
			os.LastTripAt = &lt
		}
		out.Objectives = append(out.Objectives, os)
	}
	sort.Slice(out.Objectives, func(i, j int) bool {
		return out.Objectives[i].Name < out.Objectives[j].Name
	})
	return out
}

// ParseObjectives parses the -slo flag syntax: a comma-separated list of
// "endpoint:latencyThreshold:target" (latency objective) or
// "endpoint:errors:target" (availability objective) entries, e.g.
//
//	/v1/recommendations:250ms:0.99,/v1/posts:250ms:0.99,/v1/recommendations:errors:0.999
//
// Objective names are derived from the endpoint and kind.
func ParseObjectives(spec string) ([]Objective, error) {
	var out []Objective
	seen := map[string]bool{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		parts := strings.Split(field, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("slo: bad objective %q (want endpoint:threshold:target or endpoint:errors:target)", field)
		}
		endpoint, kindOrDur, targetStr := parts[0], parts[1], parts[2]
		var target float64
		if _, err := fmt.Sscanf(targetStr, "%g", &target); err != nil {
			return nil, fmt.Errorf("slo: bad target in %q: %v", field, err)
		}
		obj := Objective{Endpoint: endpoint, Target: target}
		if kindOrDur == "errors" {
			obj.Kind = KindAvailability
			obj.Name = derivedName(endpoint, "errors")
		} else {
			d, err := time.ParseDuration(kindOrDur)
			if err != nil {
				return nil, fmt.Errorf("slo: bad threshold in %q: %v", field, err)
			}
			obj.Kind = KindLatency
			obj.Threshold = d
			obj.Name = derivedName(endpoint, "latency-"+d.String())
		}
		if err := obj.validate(); err != nil {
			return nil, err
		}
		if seen[obj.Name] {
			return nil, fmt.Errorf("slo: duplicate objective %q in spec", obj.Name)
		}
		seen[obj.Name] = true
		out = append(out, obj)
	}
	return out, nil
}

func derivedName(endpoint, suffix string) string {
	name := strings.TrimPrefix(endpoint, "/v1/")
	name = strings.Trim(strings.ReplaceAll(name, "/", "-"), "-")
	if name == "" {
		name = "root"
	}
	return name + "-" + suffix
}

// DefaultObjectivesSpec is the -slo default: tail-latency and availability
// objectives on the two paths the paper's workload hammers.
const DefaultObjectivesSpec = "/v1/recommendations:250ms:0.99," +
	"/v1/posts:250ms:0.99,/v1/recommendations:errors:0.999"
