package slo

import (
	"strings"
	"testing"
	"time"

	"caar/obs"
)

// fakeSource is a settable cumulative counter pair.
type fakeSource struct{ good, total uint64 }

func (f *fakeSource) src() (uint64, uint64) { return f.good, f.total }

func testConfig(now *time.Time) Config {
	return Config{
		FastWindow:    time.Minute,
		SlowWindow:    5 * time.Minute,
		SampleEvery:   10 * time.Second,
		BurnThreshold: 10,
		MinEvents:     10,
		TripCooldown:  time.Hour,
		Now:           func() time.Time { return *now },
	}
}

func objLatency(name string) Objective {
	return Objective{Name: name, Endpoint: "/v1/recommendations", Kind: KindLatency,
		Threshold: 100 * time.Millisecond, Target: 0.99}
}

func TestBurnRateMath(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tr := NewTracker(testConfig(&now), nil)
	fs := &fakeSource{}
	if err := tr.Add(objLatency("rec"), fs.src, 0.1); err != nil {
		t.Fatal(err)
	}

	// Baseline, then one minute later 100 requests of which 80 good: bad
	// ratio 0.2, budget 0.01 → burn 20 in both windows.
	tr.Sample(now)
	fs.good, fs.total = 80, 100
	now = now.Add(time.Minute)
	tr.Sample(now)

	st := tr.Status()
	if len(st.Objectives) != 1 {
		t.Fatalf("objectives = %d", len(st.Objectives))
	}
	for _, w := range st.Objectives[0].Windows {
		if got, want := w.BurnRate, 20.0; got < want-1e-9 || got > want+1e-9 {
			t.Errorf("%s burn = %v, want %v", w.Window, got, want)
		}
		if w.Total != 100 || w.Good != 80 {
			t.Errorf("%s good/total = %d/%d, want 80/100", w.Window, w.Good, w.Total)
		}
		if got, want := w.BudgetRemaining, 1-20.0; got < want-1e-9 || got > want+1e-9 {
			t.Errorf("%s budget = %v, want %v", w.Window, got, want)
		}
	}
	if !st.Objectives[0].Breaching {
		t.Error("burn 20 over threshold 10 with 100 events should breach")
	}
}

func TestEmptyWindowIsNotAnAnomaly(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tr := NewTracker(testConfig(&now), nil)
	fs := &fakeSource{}
	if err := tr.Add(objLatency("rec"), fs.src, 0.1); err != nil {
		t.Fatal(err)
	}

	// No samples at all.
	st := tr.Status()
	for _, w := range st.Objectives[0].Windows {
		if w.BurnRate != 0 || w.Complete {
			t.Errorf("empty ring: %s burn=%v complete=%v, want 0/false", w.Window, w.BurnRate, w.Complete)
		}
	}

	// One sample: still no interval to difference over.
	tr.Sample(now)
	st = tr.Status()
	for _, w := range st.Objectives[0].Windows {
		if w.BurnRate != 0 || w.Complete {
			t.Errorf("single sample: %s burn=%v complete=%v, want 0/false", w.Window, w.BurnRate, w.Complete)
		}
	}

	// Two samples with zero traffic: burn stays 0, budget intact.
	now = now.Add(time.Minute)
	tr.Sample(now)
	st = tr.Status()
	for _, w := range st.Objectives[0].Windows {
		if w.BurnRate != 0 || w.BudgetRemaining != 1 {
			t.Errorf("zero traffic: %s burn=%v budget=%v", w.Window, w.BurnRate, w.BudgetRemaining)
		}
	}
	if st.Objectives[0].Breaching {
		t.Error("zero traffic must not breach")
	}
}

func TestCounterResetClearsRing(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tr := NewTracker(testConfig(&now), nil)
	fs := &fakeSource{good: 1000, total: 1000}
	if err := tr.Add(objLatency("rec"), fs.src, 0.1); err != nil {
		t.Fatal(err)
	}
	tr.Sample(now)
	now = now.Add(30 * time.Second)
	fs.good, fs.total = 2000, 2000
	tr.Sample(now)

	// Restart: counters start over far below the previous reading. Without
	// reset detection the deltas would underflow to ~2^64.
	fs.good, fs.total = 3, 10
	now = now.Add(30 * time.Second)
	tr.Sample(now)

	st := tr.Status()
	for _, w := range st.Objectives[0].Windows {
		if w.Total != 0 {
			t.Errorf("%s total = %d after reset, want 0 (ring rebuilt from new baseline)", w.Window, w.Total)
		}
	}

	// The next interval differences against the post-reset baseline.
	fs.good, fs.total = 53, 110
	now = now.Add(30 * time.Second)
	tr.Sample(now)
	st = tr.Status()
	w := st.Objectives[0].Windows[0]
	if w.Total != 100 || w.Good != 50 {
		t.Errorf("post-reset window good/total = %d/%d, want 50/100", w.Good, w.Total)
	}
}

func TestMinEventsGuardsTrip(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cfg := testConfig(&now)
	var trips []Trip
	cfg.OnTrip = func(tp Trip) { trips = append(trips, tp) }
	tr := NewTracker(cfg, nil)
	fs := &fakeSource{}
	if err := tr.Add(objLatency("rec"), fs.src, 0.1); err != nil {
		t.Fatal(err)
	}

	// 5 events, all bad: burn is enormous but under MinEvents=10.
	tr.Sample(now)
	fs.good, fs.total = 0, 5
	now = now.Add(time.Minute)
	tr.Sample(now)
	if len(trips) != 0 {
		t.Fatalf("tripped on %d events, MinEvents=10", 5)
	}

	// 100 events, all bad: trips once, then the cooldown holds.
	fs.good, fs.total = 0, 105
	now = now.Add(time.Minute)
	tr.Sample(now)
	if len(trips) != 1 {
		t.Fatalf("trips = %d, want 1", len(trips))
	}
	fs.good, fs.total = 0, 205
	now = now.Add(time.Minute)
	tr.Sample(now)
	if len(trips) != 1 {
		t.Fatalf("trips = %d after cooldown-guarded resample, want 1", len(trips))
	}
	if got := trips[0]; got.Objective != "rec" || got.FastBurn < 10 {
		t.Errorf("trip = %+v", got)
	}
}

func TestLatencySourceQuantization(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("caar_test_latency_seconds", "t", []float64{0.01, 0.05, 0.1, 0.5})

	// Threshold between bounds quantizes down (stricter).
	src, eff := LatencySource(h, 200*time.Millisecond)
	if eff != 0.1 {
		t.Fatalf("effective threshold = %v, want 0.1", eff)
	}
	// Threshold below every bound uses the first bound.
	_, eff = LatencySource(h, time.Millisecond)
	if eff != 0.01 {
		t.Fatalf("effective threshold = %v, want 0.01", eff)
	}

	h.Observe(0.02) // good (<= 0.1)
	h.Observe(0.09) // good
	h.Observe(0.3)  // bad
	good, total := src()
	if good != 2 || total != 3 {
		t.Fatalf("good/total = %d/%d, want 2/3", good, total)
	}
}

func TestAvailabilitySourceClampsSkew(t *testing.T) {
	var total, errs uint64 = 10, 15 // errors momentarily ahead
	src := AvailabilitySource(func() uint64 { return total }, func() uint64 { return errs })
	good, tot := src()
	if good != 0 || tot != 10 {
		t.Fatalf("good/total = %d/%d, want 0/10", good, tot)
	}
}

func TestSlowWindowBaselineTrimming(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tr := NewTracker(testConfig(&now), nil) // slow window 5m, sample every 10s
	fs := &fakeSource{}
	if err := tr.Add(objLatency("rec"), fs.src, 0.1); err != nil {
		t.Fatal(err)
	}
	// 20 minutes of sampling: ring must not grow past the slow window.
	for i := 0; i < 120; i++ {
		fs.total += 10
		fs.good += 10
		now = now.Add(10 * time.Second)
		tr.Sample(now)
	}
	tr.mu.Lock()
	n := len(tr.objs[0].ring)
	tr.mu.Unlock()
	// 5m window at 10s cadence = 30 samples + 1 baseline, small slack.
	if n > 33 {
		t.Fatalf("ring holds %d samples, want <= 33 for a 5m window", n)
	}
	st := tr.Status()
	slow := st.Objectives[0].Windows[1]
	if !slow.Complete {
		t.Error("slow window should be complete after 20 minutes of samples")
	}
	if slow.Total != 300 {
		t.Errorf("slow window total = %d, want 300 (30 intervals x 10)", slow.Total)
	}
}

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives(DefaultObjectivesSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("parsed %d objectives, want 3", len(objs))
	}
	if objs[0].Kind != KindLatency || objs[0].Threshold != 250*time.Millisecond {
		t.Errorf("objs[0] = %+v", objs[0])
	}
	if objs[2].Kind != KindAvailability || objs[2].Endpoint != "/v1/recommendations" {
		t.Errorf("objs[2] = %+v", objs[2])
	}
	names := map[string]bool{}
	for _, o := range objs {
		if names[o.Name] {
			t.Errorf("duplicate derived name %q", o.Name)
		}
		names[o.Name] = true
	}

	for _, bad := range []string{
		"/v1/posts:250ms",                           // missing target
		"/v1/posts:250ms:1.5",                       // target out of range
		"/v1/posts:nonsense:0.99",                   // unparseable threshold
		"/v1/posts:250ms:0.99,/v1/posts:250ms:0.99", // duplicate
	} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted", bad)
		}
	}
}

func TestTrackerMetricNames(t *testing.T) {
	reg := obs.NewRegistry()
	now := time.Unix(1_700_000_000, 0)
	tr := NewTracker(testConfig(&now), reg)
	fs := &fakeSource{}
	if err := tr.Add(objLatency("rec"), fs.src, 0.1); err != nil {
		t.Fatal(err)
	}
	tr.Sample(now)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`caar_slo_burn_rate_ratio{objective="rec",window="fast"}`,
		`caar_slo_budget_remaining_ratio{objective="rec",window="slow"}`,
		`caar_slo_breaching{objective="rec"}`,
		`caar_slo_target_ratio{objective="rec"} 0.99`,
		"caar_slo_samples_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
