package trace

import (
	"math"
	"sync/atomic"
	"time"

	"caar/obs"
)

// DefaultCapacity is the ring-buffer size when Config.Capacity is zero.
const DefaultCapacity = 512

// Config shapes a Store's capture policy.
type Config struct {
	// Capacity is the ring-buffer size; the store retains the most recent
	// Capacity captured traces. 0 uses DefaultCapacity.
	Capacity int
	// SampleRate is the head-sampling fraction of ordinary requests to keep:
	// 1 keeps every request, 0 keeps none (slow/errored/forced requests are
	// still captured). Sampling is deterministic — every ⌈1/rate⌉-th request
	// — so low-QPS deployments still accumulate traces.
	SampleRate float64
	// SlowThreshold captures any request at least this slow regardless of
	// sampling (tail capture). 0 disables the slow path.
	SlowThreshold time.Duration
}

// Store is a concurrency-safe fixed-capacity ring buffer of captured
// traces. Add decides capture (head sampling plus unconditional slow/error
// tail capture) and evicts the oldest trace once full.
//
// The ring is lock-free: Add claims a slot with one atomic increment and
// publishes the trace with one atomic store, so capturing every request
// (SampleRate 1) adds no lock a preempted holder could stall the serving
// path on. The price is paid on the operator side — Get scans the ring
// linearly and List may observe slots mid-rotation — which is the right
// trade: /v1/traces is read by a human a few times a minute, Add runs on
// every request.
type Store struct {
	capacity int
	period   uint64 // keep every period-th request (head sampling)
	slow     time.Duration

	sampleCtr atomic.Uint64

	// capture accounting, exposed through RegisterMetrics.
	started     atomic.Uint64
	dropped     atomic.Uint64
	kept        atomic.Uint64
	keptSampled atomic.Uint64
	keptSlow    atomic.Uint64
	keptError   atomic.Uint64
	keptForced  atomic.Uint64

	// inserted counts slot claims; slot i of the ring holds the
	// (inserted-capacity+i)-th capture until overwritten.
	inserted atomic.Uint64
	buf      []atomic.Pointer[Trace]
}

// NewStore creates a trace store with the given capture policy.
func NewStore(cfg Config) *Store {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	var period uint64
	switch {
	case cfg.SampleRate >= 1:
		period = 1
	case cfg.SampleRate <= 0:
		period = 0 // head sampling off
	default:
		period = uint64(math.Round(1 / cfg.SampleRate))
	}
	return &Store{
		capacity: capacity,
		period:   period,
		slow:     cfg.SlowThreshold,
		buf:      make([]atomic.Pointer[Trace], capacity),
	}
}

// SampleNext reports whether head sampling admits the next request. It
// advances the deterministic sampling counter: with rate r, every
// ⌈1/r⌉-th request is admitted, starting with the first.
func (s *Store) SampleNext() bool {
	if s.period == 0 {
		return false
	}
	if s.period == 1 {
		return true
	}
	return (s.sampleCtr.Add(1)-1)%s.period == 0
}

// SlowThreshold returns the configured tail-capture latency threshold.
func (s *Store) SlowThreshold() time.Duration { return s.slow }

// Add decides whether to capture a finished trace and, when captured,
// stores it (evicting the oldest once the ring is full) and reports true.
// Slow and errored traces bypass the sampling decision; Forced traces
// (explain requests) are always captured. The trace must not be mutated
// after Add returns true.
func (s *Store) Add(t *Trace) bool {
	s.started.Add(1)
	var reason string
	switch {
	case t.Forced:
		reason = ReasonExplain
		s.keptForced.Add(1)
	case t.Outcome == OutcomeError:
		reason = ReasonError
		s.keptError.Add(1)
	case s.slow > 0 && t.DurationSeconds >= s.slow.Seconds():
		reason = ReasonSlow
		s.keptSlow.Add(1)
	case t.HeadSampled:
		reason = ReasonSampled
		s.keptSampled.Add(1)
	default:
		s.dropped.Add(1)
		return false
	}
	t.CaptureReason = reason
	s.kept.Add(1)

	// Claim a slot, overwrite whatever is there. The evicted trace stays
	// valid for readers that already loaded its pointer.
	slot := (s.inserted.Add(1) - 1) % uint64(s.capacity)
	s.buf[slot].Store(t)
	return true
}

// Get returns the stored trace with the given ID, or nil. The lookup scans
// the ring newest-first, so a reused request ID resolves to the latest
// capture.
func (s *Store) Get(id string) *Trace {
	total, newest := s.snapshot()
	for i := 0; i < total; i++ {
		t := s.buf[(newest-i+total)%total].Load()
		if t != nil && t.ID == id {
			return t
		}
	}
	return nil
}

// List returns up to n stored traces, newest first. n <= 0 returns all.
// Concurrent captures may rotate the ring mid-scan; the listing is a best-
// effort snapshot, which is fine for an operator endpoint.
func (s *Store) List(n int) []*Trace {
	total, newest := s.snapshot()
	if n <= 0 || n > total {
		n = total
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		if t := s.buf[(newest-i+total)%total].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// snapshot returns the resident-trace count and the newest slot's index.
func (s *Store) snapshot() (total, newest int) {
	ins := s.inserted.Load()
	if ins == 0 {
		return 0, 0
	}
	total = s.capacity
	if ins < uint64(s.capacity) {
		total = int(ins)
	}
	newest = int((ins - 1) % uint64(s.capacity))
	return total, newest
}

// Len returns the number of resident traces.
func (s *Store) Len() int {
	total, _ := s.snapshot()
	return total
}

// Capacity returns the ring-buffer size — the hard ceiling on retained
// traces, which the soak harness checks stays respected across crash
// cycles.
func (s *Store) Capacity() int { return s.capacity }

// RegisterMetrics exposes the store's capture accounting on reg.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("caar_trace_requests_total",
		"Recommend requests considered for trace capture.", s.started.Load)
	reg.CounterFunc("caar_trace_captured_total",
		"Traces captured into the ring buffer (all reasons).", s.kept.Load)
	reg.CounterFunc("caar_trace_dropped_total",
		"Finished traces dropped by head sampling.", s.dropped.Load)
	reg.CounterFunc("caar_trace_captured_sampled_total",
		"Traces captured by head sampling.", s.keptSampled.Load)
	reg.CounterFunc("caar_trace_captured_slow_total",
		"Traces tail-captured for exceeding the slow threshold.", s.keptSlow.Load)
	reg.CounterFunc("caar_trace_captured_errors_total",
		"Traces tail-captured because the request failed.", s.keptError.Load)
	reg.CounterFunc("caar_trace_captured_forced_total",
		"Traces captured because the request asked for an explanation.", s.keptForced.Load)
	reg.GaugeFunc("caar_trace_store_traces",
		"Traces resident in the ring buffer.", func() float64 {
			return float64(s.Len())
		})
}
