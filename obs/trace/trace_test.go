package trace

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func finished(id string, d time.Duration, err error) *Trace {
	tr := New(id, "u", 5, time.Unix(1000, 0), time.Unix(1000, 0))
	tr.Finish(d, err)
	return tr
}

// TestEvictionOrder: the ring buffer keeps exactly the most recent Capacity
// traces, List returns them newest first, and evicted traces are no longer
// reachable by ID.
func TestEvictionOrder(t *testing.T) {
	s := NewStore(Config{Capacity: 3, SampleRate: 1})
	for i := 1; i <= 5; i++ {
		tr := finished(fmt.Sprintf("t%d", i), time.Millisecond, nil)
		tr.HeadSampled = s.SampleNext()
		if !s.Add(tr) {
			t.Fatalf("trace t%d not captured at rate 1", i)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	got := s.List(0)
	want := []string{"t5", "t4", "t3"}
	for i, w := range want {
		if got[i].ID != w {
			t.Errorf("List[%d] = %s, want %s", i, got[i].ID, w)
		}
	}
	for _, evicted := range []string{"t1", "t2"} {
		if s.Get(evicted) != nil {
			t.Errorf("evicted trace %s still reachable by ID", evicted)
		}
	}
	if s.Get("t4") == nil {
		t.Error("resident trace t4 not reachable by ID")
	}
	if ls := s.List(2); len(ls) != 2 || ls[0].ID != "t5" {
		t.Errorf("List(2) = %v, want [t5 t4]", ls)
	}
}

// TestTailCaptureBypassesSampling: with head sampling fully off, slow and
// errored traces are still captured — the flight recorder's whole point —
// while ordinary fast successes are dropped.
func TestTailCaptureBypassesSampling(t *testing.T) {
	s := NewStore(Config{Capacity: 8, SampleRate: 0, SlowThreshold: 100 * time.Millisecond})

	fast := finished("fast", time.Millisecond, nil)
	fast.HeadSampled = s.SampleNext()
	if s.Add(fast) {
		t.Fatal("fast successful trace captured despite sampling off")
	}

	slow := finished("slow", 150*time.Millisecond, nil)
	slow.HeadSampled = s.SampleNext()
	if !s.Add(slow) {
		t.Fatal("slow trace not tail-captured")
	}
	if slow.CaptureReason != ReasonSlow {
		t.Errorf("slow capture reason = %q, want %q", slow.CaptureReason, ReasonSlow)
	}

	failed := finished("failed", time.Millisecond, errors.New("unknown user"))
	failed.HeadSampled = s.SampleNext()
	if !s.Add(failed) {
		t.Fatal("errored trace not tail-captured")
	}
	if failed.CaptureReason != ReasonError {
		t.Errorf("error capture reason = %q, want %q", failed.CaptureReason, ReasonError)
	}
	if failed.Outcome != OutcomeError || failed.Error == "" {
		t.Errorf("errored trace outcome = %q error = %q", failed.Outcome, failed.Error)
	}

	forced := finished("forced", time.Millisecond, nil)
	forced.Forced = true
	if !s.Add(forced) {
		t.Fatal("explain-forced trace not captured")
	}
	if forced.CaptureReason != ReasonExplain {
		t.Errorf("forced capture reason = %q, want %q", forced.CaptureReason, ReasonExplain)
	}

	if s.Len() != 3 {
		t.Fatalf("store holds %d traces, want 3 (slow, failed, forced)", s.Len())
	}
}

// TestHeadSamplingRate: a rate of 1/4 deterministically admits every 4th
// request starting with the first, so low-QPS deployments still trace.
func TestHeadSamplingRate(t *testing.T) {
	s := NewStore(Config{Capacity: 64, SampleRate: 0.25})
	admitted := 0
	for i := 0; i < 40; i++ {
		if s.SampleNext() {
			admitted++
		}
	}
	if admitted != 10 {
		t.Errorf("rate 0.25 admitted %d of 40, want 10", admitted)
	}

	always := NewStore(Config{Capacity: 4, SampleRate: 1})
	for i := 0; i < 5; i++ {
		if !always.SampleNext() {
			t.Fatal("rate 1 must admit every request")
		}
	}
}

// TestDuplicateIDEviction: when a client reuses a request ID, eviction of
// the older trace must not unmap the newer one.
func TestDuplicateIDEviction(t *testing.T) {
	s := NewStore(Config{Capacity: 2, SampleRate: 1})
	add := func(id string) *Trace {
		tr := finished(id, time.Millisecond, nil)
		tr.HeadSampled = s.SampleNext()
		s.Add(tr)
		return tr
	}
	add("dup")
	newer := add("dup")
	add("other") // evicts the older "dup"
	if got := s.Get("dup"); got != newer {
		t.Error("evicting the older duplicate unmapped the newer trace")
	}
}

// TestSpanAccessorsAndSummary covers the Trace convenience surface the
// server and CLI build on.
func TestSpanAccessorsAndSummary(t *testing.T) {
	tr := New("", "alice", 3, time.Unix(2000, 0), time.Unix(2000, 0))
	if tr.ID == "" {
		t.Fatal("empty ID not minted")
	}
	tr.AddSpan("retrieve", 2*time.Millisecond, 100, 100)
	tr.AddSpan("score", time.Millisecond, 120, 40)
	tr.AddAd(AdScore{AdID: "a1", Score: 1, Text: 0.5, Geo: 0.3, Bid: 0.2})
	tr.AddPolicyAction("a2", "dropped_frequency_cap")
	tr.Annotate("shard", "0")
	tr.Finish(5*time.Millisecond, nil)

	if sp := tr.Span("score"); sp == nil || sp.In != 120 || sp.Out != 40 {
		t.Errorf("Span(score) = %+v", sp)
	}
	if tr.Span("nope") != nil {
		t.Error("Span of unknown stage must be nil")
	}
	sum := tr.Summary()
	if sum.User != "alice" || sum.Ads != 1 || sum.Outcome != OutcomeOK ||
		sum.DurationSeconds != 0.005 {
		t.Errorf("Summary = %+v", sum)
	}
}
