// Package trace is the request-scoped flight recorder of the recommend
// path: one Trace per recorded query, carrying the per-stage latency spans
// with candidate counts (the attrition funnel lookup → retrieve → score →
// topk → map → policy), the additive score decomposition of every returned
// ad, and the policy decisions that shaped the final slate.
//
// Aggregate histograms (package obs) answer "how slow is the service";
// traces answer "why was *this* request slow" and "why was *this* ad ranked
// above that one". The two link up through the trace ID, which the serving
// layer unifies with X-Request-Id, and through bucket exemplars attached to
// the stage histograms.
//
// Capture policy lives in Store: head sampling keeps a configurable fraction
// of ordinary requests, while slow and errored requests are captured
// unconditionally (tail capture), so the interesting traces survive even at
// 1-in-10k sampling.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync/atomic"
	"time"
)

// Outcome values of a finished trace.
const (
	OutcomeOK    = "ok"
	OutcomeError = "error"
)

// Capture reasons recorded in Trace.CaptureReason. Ordered by precedence:
// an explain-forced capture reports "explain" even if it was also sampled.
const (
	ReasonExplain = "explain" // forced by ?explain=1 / TraceRequest.Explain
	ReasonError   = "error"   // tail capture: the request failed
	ReasonSlow    = "slow"    // tail capture: duration ≥ the slow threshold
	ReasonSampled = "sampled" // head sampling admitted it
)

// Span is one pipeline stage of a traced request. In and Out are the
// candidate counts flowing into and out of the stage: retrieve reports the
// text-candidate set it produced, score reports every candidate examined
// (text plus the static/geo remainder) against the number that survived
// eligibility gating, topk the collector submissions against the ranked
// results, and map/policy the slate as it narrows to the response.
type Span struct {
	Stage           string  `json:"stage"`
	DurationSeconds float64 `json:"duration_seconds"`
	In              int     `json:"in"`
	Out             int     `json:"out"`
}

// AdScore is the additive score decomposition of one returned ad:
// Score = text + geo + bid (each term already weighted, text including the
// recency-decayed window context). The terms sum to the ranking score.
type AdScore struct {
	AdID  string  `json:"ad_id"`
	Score float64 `json:"score"`
	Text  float64 `json:"text"`
	Geo   float64 `json:"geo"`
	Bid   float64 `json:"bid"`
}

// PolicyAction records one serving-policy decision about a candidate that
// did not pass through unchanged (e.g. "dropped_frequency_cap").
type PolicyAction struct {
	AdID   string `json:"ad_id"`
	Action string `json:"action"`
}

// Trace is the flight record of one recommend request. It is built by a
// single goroutine while the request runs and must not be mutated after it
// is submitted to a Store, where concurrent readers may hold it.
//
// The hot-path request facts (Algorithm, Shard, LockWaitSeconds) are typed
// fields, not Annotations entries: recording them is a plain store with no
// map or formatting allocation, which keeps full-rate tracing cheap enough
// to leave on. Annotations remains for ad-hoc notes off the hot path.
type Trace struct {
	ID              string    `json:"id"`
	User            string    `json:"user"`
	K               int       `json:"k"`
	At              time.Time `json:"at"`
	Start           time.Time `json:"start"`
	DurationSeconds float64   `json:"duration_seconds"`
	// Algorithm is the engine variant that served the request (CAP/IL/RS).
	Algorithm string `json:"algorithm,omitempty"`
	// Shard is the user shard the request was serialized on.
	Shard int `json:"shard"`
	// LockWaitSeconds is the time spent waiting for that shard's lock — the
	// first suspect when a trace is slow but its stage spans are not.
	LockWaitSeconds float64           `json:"lock_wait_seconds"`
	Spans           []Span            `json:"spans"`
	Ads             []AdScore         `json:"ads,omitempty"`
	Policy          []PolicyAction    `json:"policy_actions,omitempty"`
	Outcome         string            `json:"outcome"`
	Error           string            `json:"error,omitempty"`
	CaptureReason   string            `json:"capture_reason,omitempty"`
	Annotations     map[string]string `json:"annotations,omitempty"`

	// HeadSampled and Forced drive the store's capture decision. They are
	// set before Store.Add and are not part of the serialized trace.
	HeadSampled bool `json:"-"`
	Forced      bool `json:"-"`

	// Inline backing arrays for Spans and Ads: the usual trace (6 stages,
	// k ≤ 8 ads) lives in the Trace's own allocation; only unusually wide
	// requests spill to a grown slice.
	spanbuf [8]Span
	adbuf   [8]AdScore
}

// idPrefix makes minted trace IDs unique across process restarts; the
// atomic sequence makes them unique within one. The "t" prefix separates
// engine-minted IDs from server-minted request IDs at a glance.
var idPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

var idSeq atomic.Uint64

// NewID mints a process-unique trace ID.
func NewID() string {
	return "t" + idPrefix + "-" + strconv.FormatUint(idSeq.Add(1), 10)
}

// New starts a trace for one recommend request. An empty id mints one;
// passing the request's X-Request-Id instead unifies the trace with its
// access-log lines.
func New(id, user string, k int, at, start time.Time) *Trace {
	if id == "" {
		id = NewID()
	}
	t := &Trace{
		ID:    id,
		User:  user,
		K:     k,
		At:    at,
		Start: start,
	}
	t.Spans = t.spanbuf[:0]
	t.Ads = t.adbuf[:0]
	return t
}

// AddSpan appends one stage span.
func (t *Trace) AddSpan(stage string, d time.Duration, in, out int) {
	t.Spans = append(t.Spans, Span{Stage: stage, DurationSeconds: d.Seconds(), In: in, Out: out})
}

// AddAd appends one returned ad's score decomposition.
func (t *Trace) AddAd(a AdScore) { t.Ads = append(t.Ads, a) }

// AddPolicyAction records a serving-policy decision about a candidate.
func (t *Trace) AddPolicyAction(adID, action string) {
	t.Policy = append(t.Policy, PolicyAction{AdID: adID, Action: action})
}

// Annotate attaches a key/value annotation (shard index, lock wait, …).
func (t *Trace) Annotate(key, value string) {
	if t.Annotations == nil {
		t.Annotations = make(map[string]string, 4)
	}
	t.Annotations[key] = value
}

// Finish seals the trace with its total duration and outcome.
func (t *Trace) Finish(elapsed time.Duration, err error) {
	t.DurationSeconds = elapsed.Seconds()
	if err != nil {
		t.Outcome = OutcomeError
		t.Error = err.Error()
		return
	}
	t.Outcome = OutcomeOK
}

// Span returns the span of the named stage, or nil.
func (t *Trace) Span(stage string) *Span {
	for i := range t.Spans {
		if t.Spans[i].Stage == stage {
			return &t.Spans[i]
		}
	}
	return nil
}

// Summary is the listing view of a stored trace (/v1/traces).
type Summary struct {
	ID              string    `json:"id"`
	User            string    `json:"user"`
	K               int       `json:"k"`
	Start           time.Time `json:"start"`
	DurationSeconds float64   `json:"duration_seconds"`
	Outcome         string    `json:"outcome"`
	CaptureReason   string    `json:"capture_reason"`
	Ads             int       `json:"ads"`
}

// Summary returns the trace's listing view.
func (t *Trace) Summary() Summary {
	return Summary{
		ID:              t.ID,
		User:            t.User,
		K:               t.K,
		Start:           t.Start,
		DurationSeconds: t.DurationSeconds,
		Outcome:         t.Outcome,
		CaptureReason:   t.CaptureReason,
		Ads:             len(t.Ads),
	}
}
