package caar

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// buildSnapshotFixture loads an engine with every kind of durable state.
func buildSnapshotFixture(t *testing.T) *Engine {
	t.Helper()
	e := openEngine(t, testConfig())
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := e.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	e.Follow("alice", "bob")
	e.Follow("carol", "bob")
	if err := e.AddCampaign("spring", 24.0, morning.Add(-time.Hour), morning.Add(23*time.Hour)); err != nil {
		t.Fatal(err)
	}
	ads := []Ad{
		{ID: "shoes", Text: "marathon running shoes", Campaign: "spring", Bid: 0.4},
		{ID: "cafe", Text: "espresso pastries downtown", Bid: 0.3,
			Target: &Target{Lat: 1.5, Lng: 1.5, RadiusKm: 25},
			Slots:  []Slot{Morning, Afternoon}},
		{ID: "vpn", Text: "secure vpn anywhere", Bid: 0.6},
	}
	for _, ad := range ads {
		if err := e.AddAd(ad); err != nil {
			t.Fatal(err)
		}
	}
	// Spend some budget so pacing state is non-trivial.
	if ok, err := e.ServeImpression("shoes", morning); err != nil || !ok {
		t.Fatalf("impression: %v %v", ok, err)
	}
	// Posts build vocabulary DF state (persisted) and windows (not).
	e.Post("bob", "marathon training with espresso breaks", morning)
	return e
}

func TestSnapshotRestoreState(t *testing.T) {
	orig := buildSnapshotFixture(t)
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(testConfig(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	st := restored.Stats()
	if st.Users != 3 || st.Ads != 3 || st.FollowEdges != 2 {
		t.Fatalf("restored stats = %+v", st)
	}

	// New posts flow through the restored graph and ads still rank by text.
	now := morning.Add(time.Minute)
	if err := restored.Post("bob", "marathon run with new shoes", now); err != nil {
		t.Fatal(err)
	}
	recs, err := restored.Recommend("alice", 3, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].AdID != "shoes" {
		t.Fatalf("restored recs = %+v", recs)
	}

	// Geo + slot targeting survived.
	if err := restored.CheckIn("carol", 1.5, 1.5, now); err != nil {
		t.Fatal(err)
	}
	restored.Post("bob", "espresso pastries tasting", now.Add(time.Second))
	recs, _ = restored.Recommend("carol", 3, now.Add(2*time.Second))
	found := false
	for _, r := range recs {
		if r.AdID == "cafe" {
			found = true
		}
	}
	if !found {
		t.Fatalf("geo ad lost in restore: %+v", recs)
	}
	evening := time.Date(2026, 7, 6, 21, 0, 0, 0, time.UTC)
	recs, _ = restored.Recommend("carol", 5, evening)
	for _, r := range recs {
		if r.AdID == "cafe" {
			t.Fatalf("slot targeting lost: cafe served at night: %+v", recs)
		}
	}

	// Budget spend survived the round trip: pacing continues from the
	// recorded spend and still allows a later impression.
	if ok, err := restored.ServeImpression("shoes", morning.Add(12*time.Hour)); err != nil || !ok {
		t.Fatalf("post-restore impression: %v %v", ok, err)
	}
}

func TestSnapshotAdVectorsExact(t *testing.T) {
	orig := buildSnapshotFixture(t)
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(testConfig(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical queries must give identical scores: the ad vectors and
	// vocabulary DF state round-tripped exactly. Use a fresh post on both
	// engines so contexts match (windows are intentionally not persisted,
	// so first equalize them).
	now := morning.Add(10 * time.Minute)
	for _, e := range []*Engine{orig, restored} {
		if err := e.Post("alice", "marathon espresso vpn chatter", now); err != nil {
			t.Fatal(err)
		}
	}
	a, err := orig.Recommend("alice", 3, now)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Recommend("alice", 3, now)
	if err != nil {
		t.Fatal(err)
	}
	// Feed windows legitimately differ (the original engine still holds its
	// pre-snapshot post), so ranks may differ; what must round-trip exactly
	// is the ad set and the context-independent bid component per ad.
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	bidOf := func(recs []Recommendation) map[string]float64 {
		out := map[string]float64{}
		for _, r := range recs {
			out[r.AdID] = r.Bid
		}
		return out
	}
	am, bm := bidOf(a), bidOf(b)
	for id, bid := range am {
		got, ok := bm[id]
		if !ok {
			t.Fatalf("ad %s missing after restore (restored set %v)", id, bm)
		}
		if got != bid {
			t.Fatalf("ad %s bid: %v vs %v", id, bid, got)
		}
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	if _, err := Restore(testConfig(), strings.NewReader("{garbage")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Restore(testConfig(), strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("future version accepted")
	}
	// Edge referencing an unknown user index.
	bad := `{"version":1,"vocab":{"terms":[],"df":[],"docs":0},"users":["a"],"edges":[[0,5]]}`
	if _, err := Restore(testConfig(), strings.NewReader(bad)); err == nil {
		t.Error("dangling edge accepted")
	}
	// Ad with an unknown slot name.
	bad = `{"version":1,"vocab":{"terms":["x"],"df":[1],"docs":1},"users":[],"edges":[],
	        "ads":[{"id":"a","bid":0.5,"global":true,"slots":["brunch"],"terms":{"x":1}}]}`
	if _, err := Restore(testConfig(), strings.NewReader(bad)); err == nil {
		t.Error("unknown slot accepted")
	}
	// Campaign spend beyond budget.
	bad = `{"version":1,"vocab":{"terms":[],"df":[],"docs":0},"users":[],"edges":[],
	        "campaigns":[{"name":"c","budget":1,"start":"2026-07-06T00:00:00Z","end":"2026-07-07T00:00:00Z","spent":5}]}`
	if _, err := Restore(testConfig(), strings.NewReader(bad)); err == nil {
		t.Error("overspent campaign accepted")
	}
}

func TestSnapshotShardedEngine(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 4
	e := openEngine(t, cfg)
	for i := 0; i < 20; i++ {
		e.AddUser(string(rune('a' + i)))
	}
	e.AddAd(Ad{ID: "x", Text: "sneaker sale", Bid: 0.5})
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Restore into a single-shard engine: snapshot is shard-agnostic.
	single := testConfig()
	single.Shards = 1
	restored, err := Restore(single, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if st := restored.Stats(); st.Users != 20 || st.Ads != 1 || st.Shards != 1 {
		t.Fatalf("restored = %+v", st)
	}
}
