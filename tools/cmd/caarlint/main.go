// Command caarlint is the project's static-analysis suite: nine analyzers
// that mechanically enforce the serving engine's concurrency, observability
// and durability invariants (see the individual package docs).
//
// It speaks the go vet unitchecker protocol, so it runs over the main
// module as:
//
//	cd tools && go build -o ../bin/caarlint ./cmd/caarlint
//	go vet -vettool=bin/caarlint ./...
//
// or simply `make lint` / `make caarlint` from the repository root. The
// x/tools dependency lives in this nested module (vendored), keeping the
// main caar module dependency-free.
//
// `caarlint -list` prints the analyzer roster with each one's fixture
// package, so a reviewer can see at a glance which invariants are
// mechanically enforced and where they are exercised.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"caar/tools/caarlint/atomicfield"
	"caar/tools/caarlint/batchalias"
	"caar/tools/caarlint/cowmut"
	"caar/tools/caarlint/errstatus"
	"caar/tools/caarlint/fsyncrename"
	"caar/tools/caarlint/goroutinelife"
	"caar/tools/caarlint/lockorder"
	"caar/tools/caarlint/metricname"
	"caar/tools/caarlint/readpathlock"
)

var analyzers = []*analysis.Analyzer{
	cowmut.Analyzer,
	readpathlock.Analyzer,
	metricname.Analyzer,
	fsyncrename.Analyzer,
	errstatus.Analyzer,
	lockorder.Analyzer,
	goroutinelife.Analyzer,
	atomicfield.Analyzer,
	batchalias.Analyzer,
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-list" {
		list()
		return
	}
	unitchecker.Main(analyzers...)
}

// list prints the analyzer roster: name, one-line purpose, and whether a
// fixture package exercises it under tools/caarlint/testdata/src.
func list() {
	testdata := fixtureRoot()
	fmt.Printf("caarlint: %d analyzers\n\n", len(analyzers))
	for _, a := range analyzers {
		fixtures := "no fixtures found"
		if testdata != "" {
			dir := filepath.Join(testdata, a.Name)
			if entries, err := os.ReadDir(dir); err == nil {
				n := 0
				for _, e := range entries {
					if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
						n++
					}
				}
				fixtures = fmt.Sprintf("fixtures: testdata/src/%s (%d files)", a.Name, n)
			}
		}
		fmt.Printf("  %-14s %s\n                 %s\n", a.Name, firstLine(a.Doc), fixtures)
	}
}

// fixtureRoot locates tools/caarlint/testdata/src relative to this source
// file (for -list run from a source checkout); "" when unavailable.
func fixtureRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return ""
	}
	dir := filepath.Join(filepath.Dir(file), "..", "..", "caarlint", "testdata", "src")
	if _, err := os.Stat(dir); err != nil {
		return ""
	}
	return dir
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
