// Command caarlint is the project's static-analysis suite: five analyzers
// that mechanically enforce the serving engine's concurrency, observability
// and durability invariants (see the individual package docs).
//
// It speaks the go vet unitchecker protocol, so it runs over the main
// module as:
//
//	cd tools && go build -o ../bin/caarlint ./cmd/caarlint
//	go vet -vettool=bin/caarlint ./...
//
// or simply `make lint` / `make caarlint` from the repository root. The
// x/tools dependency lives in this nested module (vendored), keeping the
// main caar module dependency-free.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"caar/tools/caarlint/cowmut"
	"caar/tools/caarlint/errstatus"
	"caar/tools/caarlint/fsyncrename"
	"caar/tools/caarlint/metricname"
	"caar/tools/caarlint/readpathlock"
)

func main() {
	unitchecker.Main(
		cowmut.Analyzer,
		readpathlock.Analyzer,
		metricname.Analyzer,
		fsyncrename.Analyzer,
		errstatus.Analyzer,
	)
}
