// Package goroutinelife verifies that every goroutine launched in
// production code is tied to a shutdown path.
//
// PR 9's write pipeline made goroutine lifecycle a first-class invariant:
// the committer and applier must exit on Close or a shutdown drains forever,
// and the adserver's idle-fsync ticker must stop with the server or every
// test that starts one leaks it. A leaked forever-goroutine is invisible to
// the race detector and to unit tests — it only shows up as a goroutine
// count that climbs in production.
//
// The analyzer inspects each `go` statement in non-test files and resolves
// the launched body (a func literal, or a same-package function/method,
// followed transitively through same-package calls). A goroutine conforms
// when any of these holds:
//
//   - an argument of the `go` call carries the shutdown signal: a
//     context.Context, a channel, or a Done() call (`go t.Run(ctx.Done())`);
//   - the body receives from a channel other than a time.Ticker/time.Timer
//     .C or time.After/time.Tick — via select, a direct receive, or
//     range-over-channel (which exits when the channel closes, the
//     applier's contract);
//   - the body calls Done() on a sync.WaitGroup and the package contains a
//     matching Wait() (the committer/fan-out join contract);
//   - the body contains no unbounded loop at all: a one-shot goroutine that
//     runs to completion needs no shutdown signal.
//
// An unbounded loop is a `for` with no condition or a range over a ticker
// channel. Receiving only from a ticker .C does not count as a shutdown
// path — the ticker never closes its channel, which is exactly the leak
// this analyzer exists to catch. Goroutines whose body cannot be seen
// (another package's function) and that take no shutdown argument are also
// reported: the contract must be visible at the launch site.
//
// Deliberate exceptions are annotated in place:
//
//	go srv.ListenAndServe() //caarlint:allow goroutinelife exits with the process
package goroutinelife

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"caar/tools/caarlint/directive"
)

const Doc = `report goroutines with no visible shutdown path

Every go statement in production code must be tied to a shutdown path:
select/receive on a non-ticker channel, a context/channel argument, a
WaitGroup Done with a package-level Wait, or a body with no unbounded loop.
Annotate deliberate exceptions with //caarlint:allow goroutinelife <reason>.`

const name = "goroutinelife"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// maxDepth bounds the transitive walk through same-package callees.
const maxDepth = 4

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := directive.New(pass)

	// Bodies of same-package functions, for resolving `go p.committer()`.
	bodies := map[*types.Func]*ast.BlockStmt{}
	// Whether any function in the package waits on a WaitGroup; Done()
	// without a reachable Wait() is not a lifecycle.
	pkgHasWait := false
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
					bodies[fn] = n.Body
				}
			}
		case *ast.CallExpr:
			if callee, _ := typeutil.Callee(pass.TypesInfo, n).(*types.Func); callee != nil &&
				callee.Name() == "Wait" && isWaitGroupMethod(callee) {
				pkgHasWait = true
			}
		}
	})

	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		g := n.(*ast.GoStmt)
		if directive.InTestFile(pass, g.Pos()) {
			return
		}
		if hasShutdownArg(pass, g.Call) {
			return
		}
		body, targetName := spawnedBody(pass, g.Call, bodies)
		if body == nil {
			if !sup.Allowed(name, g.Pos()) {
				pass.Reportf(g.Pos(), "goroutinelife: cannot see the body of goroutine target %s and no context/stop-channel argument is passed; the shutdown contract must be visible at the launch site", targetName)
			}
			return
		}
		w := &walker{pass: pass, bodies: bodies}
		w.walk(body, 0, map[*ast.BlockStmt]bool{})
		if w.unboundedLoop && !w.shutdownRecv && !(w.wgDone && pkgHasWait) {
			if !sup.Allowed(name, g.Pos()) {
				pass.Reportf(g.Pos(), "goroutinelife: goroutine loops forever with no shutdown path: select/receive on a context, stop, or closeable channel, register with a waited WaitGroup, or bound the loop")
			}
		}
	})

	sup.Finish(name)
	return nil, nil
}

// walker accumulates lifecycle evidence over a body and its same-package
// callees.
type walker struct {
	pass   *analysis.Pass
	bodies map[*types.Func]*ast.BlockStmt

	unboundedLoop bool
	shutdownRecv  bool
	wgDone        bool
}

func (w *walker) walk(body *ast.BlockStmt, depth int, seen map[*ast.BlockStmt]bool) {
	if depth > maxDepth || seen[body] {
		return
	}
	seen[body] = true
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Cond == nil {
				w.unboundedLoop = true
			}
		case *ast.RangeStmt:
			if isChan(w.pass, n.X) {
				if isTickerChan(w.pass, n.X) {
					w.unboundedLoop = true
				} else {
					w.shutdownRecv = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && !isTickerChan(w.pass, n.X) {
				w.shutdownRecv = true
			}
		case *ast.CallExpr:
			callee, _ := typeutil.Callee(w.pass.TypesInfo, n).(*types.Func)
			if callee == nil {
				return true
			}
			if callee.Name() == "Done" && isWaitGroupMethod(callee) {
				w.wgDone = true
			}
			if callee.Pkg() == w.pass.Pkg {
				if b, ok := w.bodies[callee]; ok {
					w.walk(b, depth+1, seen)
				}
			}
		}
		return true
	})
}

// hasShutdownArg reports whether the go call passes a shutdown signal:
// a context.Context, any channel, or a Done() call.
func hasShutdownArg(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil {
			continue
		}
		if _, ok := t.Underlying().(*types.Chan); ok {
			return true
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
				return true
			}
		}
		if c, ok := arg.(*ast.CallExpr); ok {
			if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				return true
			}
		}
	}
	return false
}

// spawnedBody resolves the block the goroutine will execute: a func
// literal's body, or the body of a same-package function/method. Returns
// nil and a display name when the body is not visible.
func spawnedBody(pass *analysis.Pass, call *ast.CallExpr, bodies map[*types.Func]*ast.BlockStmt) (*ast.BlockStmt, string) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return lit.Body, "func literal"
	}
	callee, _ := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if callee == nil {
		return nil, types.ExprString(call.Fun)
	}
	if b, ok := bodies[callee]; ok {
		return b, callee.Name()
	}
	return nil, callee.FullName()
}

// isWaitGroupMethod reports whether fn is declared on sync.WaitGroup.
func isWaitGroupMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

func isChan(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isTickerChan reports whether e is a channel that will never close on
// shutdown: a time.Ticker/time.Timer .C field, or a time.After/time.Tick
// call. Receiving from one is not a shutdown path.
func isTickerChan(pass *analysis.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if e.Sel.Name != "C" {
			return false
		}
		t := pass.TypesInfo.TypeOf(e.X)
		if t == nil {
			return false
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "time" &&
			(obj.Name() == "Ticker" || obj.Name() == "Timer")
	case *ast.CallExpr:
		callee, _ := typeutil.Callee(pass.TypesInfo, e).(*types.Func)
		return callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "time" &&
			(callee.Name() == "After" || callee.Name() == "Tick")
	}
	return false
}
