package goroutinelife_test

import (
	"path/filepath"
	"testing"

	"caar/tools/caarlint/goroutinelife"
	"caar/tools/caarlint/internal/atest"
)

func TestAnalyzer(t *testing.T) {
	atest.Run(t, filepath.Join("..", "testdata"), goroutinelife.Analyzer, "goroutinelife")
}
