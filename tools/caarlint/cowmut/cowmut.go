// Package cowmut flags mutations of copy-on-write snapshots obtained from
// sync/atomic.Pointer.Load.
//
// The engine's name-resolution directory is published as an immutable
// snapshot behind an atomic.Pointer: readers load it once and writers must
// clone-mutate-publish a fresh copy. Writing through a loaded snapshot —
// a field store, a map insert or delete, a slice element store — races every
// concurrent reader without the race detector necessarily noticing (the
// racing reader may not run during the test), so the rule is enforced
// syntactically: a value that flows from Pointer.Load must never appear as
// a mutation target.
//
// Values that pass through a function call (for example d.clone()) are
// deliberately NOT tracked: returning a private deep copy is exactly the
// blessed clone-mutate-publish path.
package cowmut

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"caar/tools/caarlint/directive"
)

const Doc = `flag writes through values loaded from a sync/atomic.Pointer

Snapshots published via atomic.Pointer are immutable by contract: after
p.Load(), the snapshot may be read but never written. Writers must clone the
snapshot, mutate the private copy, and Store the result. Any assignment, map
write, delete, clear, or increment whose target is reachable from a Load
result is reported.`

const name = "cowmut"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := directive.New(pass)

	nodeFilter := []ast.Node{(*ast.FuncDecl)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		checkFunc(pass, sup, fd.Body)
	})
	sup.Finish(name)
	return nil, nil
}

// checkFunc taints variables assigned from atomic.Pointer.Load results
// (including aliases formed by selecting fields or indexing into tainted
// values) and reports every mutation whose target is tainted. Function
// literals nested in body are covered by the same walk, so a goroutine
// mutating a captured snapshot is caught too.
func checkFunc(pass *analysis.Pass, sup *directive.Suppressor, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)

	// isLoad reports whether e is a call to (*sync/atomic.Pointer[T]).Load.
	isLoad := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || fn == nil || fn.Name() != "Load" {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return false
		}
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Name() == "Pointer" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
	}

	// taintedExpr reports whether e derives from a Load result without
	// passing through a function call.
	var taintedExpr func(e ast.Expr) bool
	taintedExpr = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			return tainted[pass.TypesInfo.ObjectOf(e)]
		case *ast.SelectorExpr:
			// A selection through a tainted base stays tainted; a qualified
			// package identifier never is.
			return taintedExpr(e.X)
		case *ast.IndexExpr:
			return taintedExpr(e.X)
		case *ast.ParenExpr:
			return taintedExpr(e.X)
		case *ast.StarExpr:
			return taintedExpr(e.X)
		case *ast.UnaryExpr:
			return e.Op == token.AND && taintedExpr(e.X)
		case *ast.TypeAssertExpr:
			return taintedExpr(e.X)
		case *ast.CallExpr:
			return isLoad(e)
		}
		return false
	}

	// Pass 1: propagate taint through assignments to a fixed point, so
	// `d := p.Load(); ads := d.ads` taints both d and ads regardless of
	// statement order encountered during the walk.
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok || id.Name == "_" {
							continue
						}
						obj := pass.TypesInfo.ObjectOf(id)
						if obj != nil && !tainted[obj] && taintedExpr(n.Rhs[i]) {
							tainted[obj] = true
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, id := range n.Names {
						obj := pass.TypesInfo.ObjectOf(id)
						if obj != nil && !tainted[obj] && taintedExpr(n.Values[i]) {
							tainted[obj] = true
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				// for k, v := range d.m — v aliases tainted map/slice values.
				if n.Tok == token.DEFINE && taintedExpr(n.X) {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							obj := pass.TypesInfo.ObjectOf(id)
							if obj != nil && !tainted[obj] {
								tainted[obj] = true
								changed = true
							}
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	report := func(pos token.Pos, format string, args ...any) {
		if sup.Allowed(name, pos) {
			return
		}
		pass.Reportf(pos, "cowmut: %s", fmt.Sprintf(format, args...))
	}

	// mutationTarget reports whether writing to lhs mutates a loaded
	// snapshot. Reassigning the snapshot variable itself (d = ...) is fine;
	// writing through it (d.f = ..., d.m[k] = ..., *d = ...) is not.
	mutationTarget := func(lhs ast.Expr) bool {
		switch lhs := lhs.(type) {
		case *ast.SelectorExpr:
			return taintedExpr(lhs.X)
		case *ast.IndexExpr:
			return taintedExpr(lhs.X)
		case *ast.StarExpr:
			return taintedExpr(lhs.X)
		}
		return false
	}

	// Pass 2: report mutations.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if mutationTarget(lhs) {
					report(lhs.Pos(), "write to copy-on-write snapshot loaded from atomic.Pointer; clone it, mutate the copy, and Store the result")
				}
			}
		case *ast.IncDecStmt:
			if mutationTarget(n.X) {
				report(n.X.Pos(), "increment of copy-on-write snapshot loaded from atomic.Pointer; clone it, mutate the copy, and Store the result")
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "delete" || id.Name == "clear") {
				if pass.TypesInfo.ObjectOf(id) == nil || pass.TypesInfo.ObjectOf(id).Pkg() == nil { // builtin
					if len(n.Args) > 0 && taintedExpr(n.Args[0]) {
						report(n.Pos(), "%s on map owned by a copy-on-write snapshot loaded from atomic.Pointer", id.Name)
					}
				}
			}
		}
		return true
	})
}
