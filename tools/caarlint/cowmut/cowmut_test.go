package cowmut_test

import (
	"path/filepath"
	"testing"

	"caar/tools/caarlint/cowmut"
	"caar/tools/caarlint/internal/atest"
)

func TestAnalyzer(t *testing.T) {
	atest.Run(t, filepath.Join("..", "testdata"), cowmut.Analyzer, "cowmut")
}
