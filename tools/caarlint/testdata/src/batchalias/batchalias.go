// Package fixture exercises the batchalias analyzer: batch parameters and
// ring-popped entries retained past the hand-off are reported; value
// copies, sanctioned append-spread copies, fan-out joins, and annotated
// ownership transfers are not.
package fixture

import "sync"

type Post struct{ Text string }

type item struct{ v int }

type ring struct{ buf []*item }

func (r *ring) pop() *item {
	if len(r.buf) == 0 {
		return nil
	}
	it := r.buf[0]
	r.buf = r.buf[1:]
	return it
}

type Engine struct {
	held   []Post
	byUser map[string][]Post
	ch     chan []Post
	keep   []*item
	wg     sync.WaitGroup
}

// PostBatch violates the contract three ways.
func (e *Engine) PostBatch(batch []Post) {
	e.held = batch // want `batchalias: batch parameter batch retained in field held`
	e.ch <- batch  // want `batchalias: batch parameter batch sent to a channel`
	go func() {    // want `batchalias: batch parameter batch captured by a spawned goroutine`
		_ = batch
	}()
}

// CheckInBatch shows the conforming patterns: per-element value copies,
// the append-spread escape, and a goroutine joined before return.
func (e *Engine) CheckInBatch(batch []Post) {
	for i := range batch {
		_ = batch[i].Text // element value copy: fine
	}
	cp := append([]Post(nil), batch...) // sanctioned copy
	e.held = cp
	e.wg.Add(1)
	go func() { // joined below: the batch outlives the goroutine
		defer e.wg.Done()
		_ = batch
	}()
	e.wg.Wait()
}

// AppendBatch retains a re-slice: aliases propagate through b[:1] and the
// finding lands on the store.
func (e *Engine) AppendBatch(batch []Post) {
	head := batch[:1]
	e.held = head // want `batchalias: batch parameter batch retained in field held`
}

// IndexBatch retains through a map element of a field.
func (e *Engine) IndexBatch(batch []Post) {
	e.byUser["u"] = batch // want `batchalias: batch parameter batch retained in field byUser`
}

// AllowBatch documents a deliberate ownership transfer.
func (e *Engine) AllowBatch(batch []Post) {
	e.held = batch //caarlint:allow batchalias fixture: ownership transferred, producer never reuses
}

// drainTo retains a ring entry in a field.
func (e *Engine) drainTo(r *ring) {
	it := r.pop()
	e.keep = append(e.keep, it) // want `batchalias: ring entry from pop\(\) retained in field keep`
}

// drainBatch accumulates popped entries into a local it returns: the
// caller takes ownership of the fresh slice, not the ring's memory.
func drainBatch(r *ring) []*item {
	var out []*item
	for {
		it := r.pop()
		if it == nil {
			break
		}
		out = append(out, it)
	}
	return out
}
