// Package fixture exercises the metricname analyzer against the stub obs
// registry: naming, kind-suffix, unit, label, and help rules.
package fixture

import "obs"

func violating(r *obs.Registry, dyn string) {
	r.Counter("caar_requests", "Requests served.")         // want `counter "caar_requests" must end in _total`
	r.Counter("requests_total", "Requests served.")        // want `lacks the "caar_" prefix`
	r.Counter("caar_Bad_Name_total", "Bad.")               // want `not snake_case`
	r.Counter(dyn, "Dynamic.")                             // want `must be a compile-time constant`
	r.Counter("caar_things_total", "")                     // want `registered without help text`
	r.Gauge("caar_queue_depth_total", "Depth.")            // want `gauge "caar_queue_depth_total" must not end in _total`
	r.GaugeFunc("caar_pauses_total", "P.", nil)            // want `gauge "caar_pauses_total" must not end in _total`
	r.Histogram("caar_latency", "Latency.", nil)           // want `must declare a base unit suffix`
	r.Histogram("caar_latency_sum", "Latency.", nil)       // want `exposition-reserved suffix "_sum"`
	r.Histogram("caar_size_count", "Size.", nil)           // want `exposition-reserved suffix "_count"`
	r.CounterVec("caar_hits_total", "Hits.", "le")         // want `label name "le" is reserved`
	r.CounterVec("caar_errs_total", "Errors.", dyn)        // want `label names must be compile-time constants`
	r.HistogramVec("caar_rt_seconds", "RT.", nil, "Route") // want `label name "Route" is not snake_case`
}

func conforming(r *obs.Registry) {
	r.Counter("caar_requests_total", "Requests served.")
	r.CounterFunc("caar_appends_total", "Journal appends.", nil)
	r.CounterFloatFunc("caar_gc_pause_seconds_total", "GC pause.", nil)
	r.Gauge("caar_queue_depth", "Queue depth.")
	r.GaugeVec("caar_shard_fill_ratio", "Shard fill.", "shard")
	r.Histogram("caar_latency_seconds", "Latency.", nil)
	r.HistogramVec("caar_payload_bytes", "Payload.", nil, "route", "method")
}

// The SLO watchdog and flight-recorder families must keep passing the same
// rules as every other metric.
func conformingSLOCapture(r *obs.Registry) {
	r.GaugeVec("caar_slo_burn_rate_ratio", "Burn rate.", "objective", "window")
	r.GaugeVec("caar_slo_budget_remaining_ratio", "Budget left.", "objective", "window")
	r.GaugeVec("caar_slo_breaching", "Breaching now.", "objective")
	r.GaugeVec("caar_slo_target_ratio", "Objective target.", "objective")
	r.CounterVec("caar_slo_trips_total", "Watchdog trips.", "objective")
	r.Counter("caar_slo_samples_total", "Sampling ticks.")
	r.CounterVec("caar_capture_bundles_total", "Bundles written.", "trigger")
	r.Counter("caar_capture_throttled_total", "Rate-limited captures.")
	r.Counter("caar_capture_errors_total", "Bundle artifact failures.")
	r.GaugeFunc("caar_capture_last_unix_seconds", "Last capture time.", nil)
}

func violatingSLOCapture(r *obs.Registry) {
	r.CounterVec("caar_slo_trips", "Trips.", "objective")        // want `counter "caar_slo_trips" must end in _total`
	r.GaugeVec("caar_slo_breaching_total", "B.", "objective")    // want `gauge "caar_slo_breaching_total" must not end in _total`
	r.CounterVec("caar_capture_bundles_total", "Bundles.", "le") // want `label name "le" is reserved`
}

// The hot-key telemetry families (obs/hotkey) must keep passing the same
// rules as every other metric.
func conformingHot(r *obs.Registry) {
	r.CounterVec("caar_hot_events_total", "Hot-key events recorded.", "dim")
	r.CounterVec("caar_hot_dropped_total", "Hot-key events dropped at a full queue.", "dim")
	r.GaugeVec("caar_hot_tracked_keys", "Distinct keys tracked.", "dim")
	r.GaugeVec("caar_hot_window_weight", "Event weight in the sliding window.", "dim")
	r.GaugeVec("caar_hot_top_share_ratio", "Top key's share of window weight.", "dim")
}

func violatingHot(r *obs.Registry) {
	r.CounterVec("caar_hot_events", "Events.", "dim")         // want `counter "caar_hot_events" must end in _total`
	r.GaugeVec("caar_hot_tracked_keys_total", "Keys.", "dim") // want `gauge "caar_hot_tracked_keys_total" must not end in _total`
	r.CounterVec("hot_dropped_total", "Dropped.", "dim")      // want `lacks the "caar_" prefix`
	r.GaugeVec("caar_hot_TopShare_ratio", "Share.", "dim")    // want `not snake_case`
	r.CounterVec("caar_hot_events_total", "Events.", "le")    // want `label name "le" is reserved`
	r.GaugeVec("caar_hot_window_weight", "", "dim")           // want `registered without help text`
}
