// Package fixture exercises the fsyncrename analyzer: an os.Rename with no
// (*os.File).Sync earlier in the same function is reported, and so is a
// function whose last os.Rename has no directory fsync after it.
package fixture

import "os"

func violating(tmp, dst string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		return err
	}
	if err := f.Close(); err != nil { // Close does not imply fsync
		return err
	}
	return os.Rename(tmp, dst) // want `os\.Rename with no preceding \(\*os\.File\)\.Sync in violating` `not followed by a directory fsync in violating`
}

func bareRename(tmp, dst string) error {
	return os.Rename(tmp, dst) // want `os\.Rename with no preceding` `not followed by a directory fsync`
}

// missingDirSync gets the data fsync right but never persists the rename
// itself: the directory entry can roll back across an OS crash.
func missingDirSync(tmp, dst string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, dst) // want `not followed by a directory fsync in missingDirSync`
}

// conforming runs the full protocol: write, sync, close, rename, then fsync
// the parent directory.
func conforming(dir, tmp, dst string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// fsyncDir is the canonical directory-fsync wrapper shape the analyzer
// recognizes by name.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// conformingViaHelper satisfies the directory-fsync requirement through the
// named helper instead of an inline File.Sync.
func conformingViaHelper(dir, tmp, dst string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	return fsyncDir(dir)
}

// rotateThenPublish uses two renames and one trailing dir sync: only the
// last rename needs to be followed by the directory fsync.
func rotateThenPublish(dir, tmp, dst string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(dst, dst+".prev"); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	return fsyncDir(dir)
}

// annotated documents a rename whose data was synced by the caller and
// whose directory the caller also syncs.
func annotated(tmp, dst string) error {
	//caarlint:allow fsyncrename caller synced the payload and fsyncs the directory after the batch of renames
	return os.Rename(tmp, dst)
}
