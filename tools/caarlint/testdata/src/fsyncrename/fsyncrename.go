// Package fixture exercises the fsyncrename analyzer: an os.Rename with no
// (*os.File).Sync earlier in the same function is reported.
package fixture

import "os"

func violating(tmp, dst string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		return err
	}
	if err := f.Close(); err != nil { // Close does not imply fsync
		return err
	}
	return os.Rename(tmp, dst) // want `os\.Rename with no preceding \(\*os\.File\)\.Sync in violating`
}

func bareRename(tmp, dst string) error {
	return os.Rename(tmp, dst) // want `os\.Rename with no preceding`
}

func conforming(tmp, dst string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, dst)
}

// annotated documents a rename whose data was synced by the caller.
func annotated(tmp, dst string) error {
	//caarlint:allow fsyncrename caller synced the payload before handing over the temp path
	return os.Rename(tmp, dst)
}
