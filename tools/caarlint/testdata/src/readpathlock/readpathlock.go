// Package fixture exercises the readpathlock analyzer: mutex acquisitions
// reachable from the serving roots (Recommend/deliver/ServeImpression, by
// default) are reported; locks off the path and annotated serialization
// points are not.
package fixture

import "sync"

type shard struct{ mu sync.Mutex }

type engine struct {
	sh shard
	rw sync.RWMutex
}

func (e *engine) Recommend() {
	e.helper()
	e.rw.RLock() // want `sync\.RWMutex\.RLock acquired on the serving read path \(via Recommend\)`
	e.rw.RUnlock()
}

// helper is one hop from the root; the chain in the diagnostic names it.
func (e *engine) helper() {
	e.sh.mu.Lock() // want `sync\.Mutex\.Lock acquired on the serving read path \(via Recommend → helper\)`
	e.sh.mu.Unlock()
}

// deliver locks inside a fan-out goroutine: still the serving path.
func (e *engine) deliver() {
	run := func() {
		e.sh.mu.Lock() // want `sync\.Mutex\.Lock acquired on the serving read path \(via deliver\)`
		e.sh.mu.Unlock()
	}
	go run()
}

// ServeImpression holds the designed per-shard serialization point,
// annotated in place.
func (e *engine) ServeImpression() {
	e.sh.mu.Lock() //caarlint:allow readpathlock per-shard lock is the designed serialization point
	e.sh.mu.Unlock()
}

// adminRebuild is not reachable from any root: its lock is fine.
func (e *engine) adminRebuild() {
	e.rw.Lock()
	defer e.rw.Unlock()
}
