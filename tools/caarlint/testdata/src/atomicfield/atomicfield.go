// Package fixture exercises the atomicfield analyzer: plain access to
// atomically-accessed fields and guarded-field access without the lock are
// reported; consistent atomic use, *Locked helpers, constructors, and
// annotated exceptions are not.
package fixture

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	n     uint64 // accessed via sync/atomic functions everywhere
	typed atomic.Uint64
}

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
	c.typed.Add(1)
}

func (c *counter) read() uint64 {
	return atomic.LoadUint64(&c.n)
}

// mixed reads the atomic field plainly: a data race by construction.
func (c *counter) mixed() uint64 {
	return c.n // want `atomicfield: plain access to counter\.n, which is accessed atomically at`
}

// mixedWrite is the write-side variant.
func (c *counter) mixedWrite() {
	c.n = 0 // want `atomicfield: plain access to counter\.n, which is accessed atomically at`
}

// allowedRead documents a deliberately racy stats read.
func (c *counter) allowedRead() uint64 {
	return c.n //caarlint:allow atomicfield fixture: approximate stats read, staleness acceptable
}

type dimension struct {
	mu    sync.Mutex
	win   map[string]int // guarded by mu
	names []string       // guarded by mu
}

// drain holds the mutex across every guarded access: conforming.
func (d *dimension) drain() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.win["k"]++
	d.names = append(d.names, "k")
}

// drainLocked is the caller-holds-the-lock convention: exempt.
func (d *dimension) drainLocked() {
	d.win["k"]++
}

// peek touches a guarded field with no lock in sight.
func (d *dimension) peek() int {
	return d.win["k"] // want `atomicfield: dimension\.win accessed without holding dimension\.mu`
}

// unlockTooEarly releases before the last guarded access.
func (d *dimension) unlockTooEarly() {
	d.mu.Lock()
	d.win["k"]++
	d.mu.Unlock()
	d.names = nil // want `atomicfield: dimension\.names accessed without holding dimension\.mu`
}

// newDimension is a constructor: the value is unpublished, no lock needed.
func newDimension() *dimension {
	d := &dimension{}
	d.win = make(map[string]int)
	return d
}
