// Package fixture exercises the cowmut analyzer: mutations of snapshots
// loaded from atomic.Pointer must be reported; the clone-mutate-publish
// path must not.
package fixture

import "sync/atomic"

type stat struct{ n int }

type directory struct {
	ads   map[string]int
	stats map[string]*stat
	slots []int
	count int
}

var ptr atomic.Pointer[directory]

func violating() {
	d := ptr.Load()
	d.ads["x"] = 1     // want `write to copy-on-write snapshot`
	d.count++          // want `increment of copy-on-write snapshot`
	d.slots[0] = 7     // want `write to copy-on-write snapshot`
	delete(d.ads, "x") // want `delete on map owned by a copy-on-write snapshot`
	clear(d.ads)       // want `clear on map owned by a copy-on-write snapshot`
	*d = directory{}   // want `write to copy-on-write snapshot`

	// Aliases formed by selecting into the snapshot stay tainted.
	ads := d.ads
	ads["y"] = 2 // want `write to copy-on-write snapshot`

	// Pointer values ranged out of a tainted map still point into the
	// shared snapshot.
	for _, st := range d.stats {
		st.n++ // want `increment of copy-on-write snapshot`
	}
}

func inlineLoad() {
	ptr.Load().ads["x"] = 1 // want `write to copy-on-write snapshot`
}

func conforming() *directory {
	d := ptr.Load()
	_ = d.count // reads are fine
	_ = d.ads["x"]

	// The blessed path: a value that passed through a call is a private
	// copy, free to mutate before being published.
	cp := clone(d)
	cp.ads["x"] = 1
	cp.count++
	ptr.Store(cp)

	// Untainted locals are untouched by the analyzer.
	local := &directory{ads: map[string]int{}}
	local.ads["y"] = 2
	local.count = 9
	return local
}

func annotated() {
	d := ptr.Load()
	d.count = 0 //caarlint:allow cowmut fixture demonstrates an explained exception
}

func directiveHygiene() {
	d := ptr.Load()
	_ = d
	//caarlint:allow cowmut // want `caarlint:allow without a reason`
	//caarlint:allow cowmut nothing to suppress here // want `stale caarlint:allow directive`
}

func clone(d *directory) *directory {
	cp := &directory{ads: make(map[string]int, len(d.ads)), count: d.count}
	for k, v := range d.ads {
		cp.ads[k] = v
	}
	return cp
}
