// Package fixture exercises the errstatus analyzer: engine API errors must
// reach the fail error→status table, never the ad-hoc httpError writer, and
// nothing but the recovery middleware writes a 500.
package fixture

type writer struct{}

// API mirrors the engine interface the serving layer talks to.
type API interface {
	MapAd(name string) error
}

// PolicyAPI is the second configured interface name.
type PolicyAPI interface {
	RecommendWithPolicy(user string) ([]string, error)
}

func httpError(w *writer, code int, msg string) {}

func fail(w *writer, err error) {}

func violatingDirect(a API, w *writer) {
	err := a.MapAd("x")
	if err != nil {
		httpError(w, 400, err.Error()) // want `engine API error passed to httpError, bypassing the error→status table`
	}
}

func violatingSecondInterface(pa PolicyAPI, w *writer) {
	recs, err := pa.RecommendWithPolicy("u")
	if err != nil {
		httpError(w, 400, "recommend failed: "+err.Error()) // want `engine API error passed to httpError`
	}
	_ = recs
}

func violating500(w *writer) {
	httpError(w, 500, "boom") // want `httpError with status 500`
}

func conforming(a API, w *writer) {
	if err := a.MapAd("x"); err != nil {
		fail(w, err)
	}
	// 503 is legitimate: it is what the durability table maps to.
	httpError(w, 503, "journal unavailable")
	// Non-engine errors may use httpError freely.
	httpError(w, 400, "k must be a positive integer")
}

// conformingReuse reuses one err variable: the engine assignment flows to
// fail, then the same variable holds a parse error that may go to
// httpError. Taint follows the latest assignment, not the variable.
func conformingReuse(a API, w *writer, parse func() error) {
	err := a.MapAd("x")
	if err != nil {
		fail(w, err)
		return
	}
	err = parse()
	if err != nil {
		httpError(w, 400, err.Error())
	}
}

// annotated is the recovery-middleware exception.
func annotated(w *writer) {
	//caarlint:allow errstatus the recovery middleware owns 500
	httpError(w, 500, "internal server error")
}
