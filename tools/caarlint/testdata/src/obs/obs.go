// Package obs is a signature-compatible stub of the repository's metrics
// registry, just enough for the metricname fixtures to type-check. The
// analyzer matches registration methods by receiver type name (Registry)
// and package name (obs), so the stub exercises the same code paths as the
// real package.
package obs

type Registry struct{}

type Counter struct{}
type CounterVec struct{}
type Gauge struct{}
type GaugeVec struct{}
type Histogram struct{}
type HistogramVec struct{}

func (r *Registry) Counter(name, help string) *Counter                         { return nil }
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec { return nil }
func (r *Registry) CounterFunc(name, help string, fn func() uint64)            {}
func (r *Registry) CounterFloatFunc(name, help string, fn func() float64)      {}
func (r *Registry) Gauge(name, help string) *Gauge                             { return nil }
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec     { return nil }
func (r *Registry) GaugeFunc(name, help string, fn func() float64)             {}
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram  { return nil }
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return nil
}
