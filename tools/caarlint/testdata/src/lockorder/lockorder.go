// Package fixture exercises the lockorder analyzer: nesting against the
// canonical order (Engine.dirMu before shard.mu before Writer.mu), ABBA
// cycles among unordered locks, and self-deadlocks are reported; canonical
// nesting and annotated exceptions are not.
package fixture

import "sync"

type shard struct{ mu sync.Mutex }

type Engine struct {
	dirMu sync.Mutex
	sh    shard
}

type Writer struct{ mu sync.Mutex }

// AddUser nests in the canonical order: directory writer lock, then the
// shard core lock. No finding.
func (e *Engine) AddUser() {
	e.dirMu.Lock()
	e.sh.mu.Lock()
	e.sh.mu.Unlock()
	e.dirMu.Unlock()
}

// badNest inverts the canonical order.
func (e *Engine) badNest() {
	e.sh.mu.Lock()
	e.dirMu.Lock() // want `lockorder: Engine\.dirMu acquired while holding shard\.mu, against the canonical order`
	e.dirMu.Unlock()
	e.sh.mu.Unlock()
}

// badNestViaCall reaches the inversion through a same-package callee; the
// finding lands on the call site and names the callee.
func (e *Engine) badNestViaCall() {
	e.sh.mu.Lock()
	defer e.sh.mu.Unlock()
	e.lockDir() // want `lockorder: Engine\.dirMu acquired \(via call to lockDir\) while holding shard\.mu, against the canonical order`
}

func (e *Engine) lockDir() {
	e.dirMu.Lock()
	e.dirMu.Unlock()
}

// journalUnderShard is allowed by the canonical order (Writer.mu is
// innermost). No finding.
func (e *Engine) journalUnderShard(w *Writer) {
	e.sh.mu.Lock()
	w.mu.Lock()
	w.mu.Unlock()
	e.sh.mu.Unlock()
}

// pair's locks are outside the canonical list; opposing nestings form an
// ABBA cycle, reported at both sites.
type pair struct{ a, b sync.Mutex }

func (p *pair) lockAB() {
	p.a.Lock()
	p.b.Lock() // want `lockorder: lock cycle: pair\.b acquired while holding pair\.a`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) lockBA() {
	p.b.Lock()
	p.a.Lock() // want `lockorder: lock cycle: pair\.a acquired while holding pair\.b`
	p.a.Unlock()
	p.b.Unlock()
}

// selfy relocks a mutex it already holds.
type selfy struct{ mu sync.Mutex }

func (s *selfy) relock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want `lockorder: selfy\.mu acquired while already held — self-deadlock`
	s.mu.Unlock()
}

// quiet's inversion is a deliberate, documented exception.
type quiet struct {
	outer sync.Mutex
	inner sync.Mutex
}

func (q *quiet) allowedInversion() {
	q.inner.Lock()
	q.outer.Lock() //caarlint:allow lockorder deliberate fixture exception: init-only path, no concurrent outer holder
	q.outer.Unlock()
	q.inner.Unlock()
}

func (q *quiet) opposing() {
	q.outer.Lock()
	q.inner.Lock() // want `lockorder: lock cycle: quiet\.inner acquired while holding quiet\.outer`
	q.inner.Unlock()
	q.outer.Unlock()
}

// stale directive: matches no finding, reported by Finish.
//
//caarlint:allow lockorder nothing wrong here // want `lockorder: stale caarlint:allow directive`
func (q *quiet) clean() {
	q.outer.Lock()
	q.outer.Unlock()
}
