// Package fixture exercises the goroutinelife analyzer: forever-goroutines
// with no shutdown path are reported; goroutines tied to a stop channel,
// context argument, closeable channel range, waited WaitGroup, or bounded
// work are not.
package fixture

import (
	"sync"
	"time"
)

type pipeline struct {
	wake  chan struct{}
	stop  chan struct{}
	applq chan []int
	wg    sync.WaitGroup
}

// committer selects on the pipeline's stop channel: conforming.
func (p *pipeline) committer() {
	for {
		select {
		case <-p.wake:
		case <-p.stop:
			return
		}
	}
}

// applier ranges over a closeable channel: conforming.
func (p *pipeline) applier() {
	for batch := range p.applq {
		_ = batch
	}
}

func (p *pipeline) Start() {
	go p.committer()
	go p.applier()
}

// idleTicker mirrors adserver's idle-fsync loop: the ticker receive alone
// would be a leak, the ctx-style done channel makes it conforming.
func idleTicker(done <-chan struct{}) {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
		}
	}()
}

// leakedTicker is the canonical violation: receiving only from a ticker .C
// is not a shutdown path because the channel never closes.
func leakedTicker() {
	go func() { // want `goroutinelife: goroutine loops forever with no shutdown path`
		t := time.NewTicker(time.Second)
		for {
			select {
			case <-t.C:
			}
		}
	}()
}

// leakedRange is the range-over-ticker variant of the same leak.
func leakedRange() {
	t := time.NewTicker(time.Second)
	go func() { // want `goroutinelife: goroutine loops forever with no shutdown path`
		for range t.C {
		}
	}()
}

// waited registers with a WaitGroup that Drain waits on: conforming.
func (p *pipeline) waited() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case <-p.wake:
				return
			}
		}
	}()
}

func (p *pipeline) Drain() {
	p.wg.Wait()
}

// oneShot runs to completion; bounded goroutines need no shutdown signal.
func oneShot(results chan<- int) {
	go func() {
		sum := 0
		for i := 0; i < 100; i++ {
			sum += i
		}
		results <- sum
	}()
}

// byArgument passes the stop channel to a target whose body the analyzer
// can also see; the argument alone already marks the contract.
func byArgument(stop chan struct{}) {
	go loopOn(stop)
}

func loopOn(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		}
	}
}

// opaque spawns another package's function with no shutdown argument: the
// contract is not visible at the launch site.
func opaque() {
	go time.Sleep(time.Second) // want `goroutinelife: cannot see the body of goroutine target time\.Sleep`
}

// allowed documents a deliberate process-lifetime goroutine.
func allowed() {
	go func() { //caarlint:allow goroutinelife fixture: deliberate process-lifetime loop
		for {
		}
	}()
}
