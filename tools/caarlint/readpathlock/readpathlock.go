// Package readpathlock enforces the serving read path's lock-freedom.
//
// PR 4 made Recommend/deliver/ServeImpression resolve names against a
// copy-on-write directory loaded with one atomic pointer read, taking zero
// global locks. One accidentally reintroduced mutex on that path silently
// destroys the sustained hot-path throughput the system exists for, and no
// test fails — the code is still correct, just slow and convoyed.
//
// The analyzer walks the static call graph inside the analyzed package from
// a configurable set of root functions (the serving entry points) and
// reports every reachable sync.Mutex / sync.RWMutex acquisition, including
// those inside function literals launched from the path (a fan-out
// goroutine convoyed on a lock is still on the serving path).
//
// Intentional serialization points — the per-shard core lock is the
// designed one — are annotated in place:
//
//	sh.mu.Lock() //caarlint:allow readpathlock per-shard lock is the designed serialization point
package readpathlock

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"caar/tools/caarlint/directive"
)

const Doc = `report lock acquisitions reachable from the serving read path

Walks static calls from the configured root functions (default: the engine's
Recommend/deliver/ServeImpression family) within the package under analysis
and reports any reachable sync.Mutex or sync.RWMutex Lock/RLock/TryLock.
Annotate designed serialization points with
//caarlint:allow readpathlock <reason>.`

const name = "readpathlock"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// roots names the serving-path entry points, comma separated. Overridable
// so other repos (and the analyzer's own fixtures) can anchor the walk
// elsewhere.
var roots = "Recommend,RecommendWithPolicy,RecommendTraced,recommend,deliver,ServeImpression"

func init() {
	Analyzer.Flags.StringVar(&roots, "roots", roots, "comma-separated root function names anchoring the read-path walk")
}

// lockMethods are the sync.Mutex/RWMutex acquisition methods. Unlock is
// deliberately absent: an unlock without a reachable lock is dead code, not
// a throughput hazard.
var lockMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := directive.New(pass)

	rootSet := make(map[string]bool)
	for _, r := range strings.Split(roots, ",") {
		if r = strings.TrimSpace(r); r != "" {
			rootSet[r] = true
		}
	}

	// lockSite is one mutex acquisition found in a function body.
	type lockSite struct {
		call *ast.CallExpr
		name string // e.g. "sync.Mutex.Lock"
	}
	type funcInfo struct {
		decl    *ast.FuncDecl
		callees []*types.Func
		locks   []lockSite
	}
	funcs := make(map[*types.Func]*funcInfo)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		fi := &funcInfo{decl: fd}
		funcs[fn] = fi
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
			if !ok || callee == nil {
				return true
			}
			if mutex := lockedMutex(callee); mutex != "" {
				fi.locks = append(fi.locks, lockSite{call: call, name: mutex + "." + callee.Name()})
				return true
			}
			fi.callees = append(fi.callees, callee)
			return true
		})
	})

	// BFS from the roots; record the shortest chain for diagnostics.
	type qitem struct {
		fn    *types.Func
		chain string
	}
	var queue []qitem
	seen := make(map[*types.Func]bool)
	for fn, fi := range funcs {
		if rootSet[fn.Name()] && !directive.InTestFile(pass, fi.decl.Pos()) {
			queue = append(queue, qitem{fn, fn.Name()})
			seen[fn] = true
		}
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		fi := funcs[it.fn]
		if fi == nil {
			continue
		}
		for _, ls := range fi.locks {
			if sup.Allowed(name, ls.call.Pos()) {
				continue
			}
			pass.Reportf(ls.call.Pos(),
				"readpathlock: %s acquired on the serving read path (via %s); the read path must stay lock-free — use the copy-on-write snapshot or annotate a designed serialization point",
				ls.name, it.chain)
		}
		for _, callee := range fi.callees {
			if !seen[callee] && funcs[callee] != nil {
				seen[callee] = true
				queue = append(queue, qitem{callee, it.chain + " → " + callee.Name()})
			}
		}
	}

	sup.Finish(name)
	return nil, nil
}

// lockedMutex returns "sync.Mutex" / "sync.RWMutex" when fn is one of their
// acquisition methods, else "".
func lockedMutex(fn *types.Func) string {
	if !lockMethods[fn.Name()] {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
		return "sync." + obj.Name()
	}
	return ""
}
