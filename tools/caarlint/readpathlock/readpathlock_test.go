package readpathlock_test

import (
	"path/filepath"
	"testing"

	"caar/tools/caarlint/internal/atest"
	"caar/tools/caarlint/readpathlock"
)

func TestAnalyzer(t *testing.T) {
	atest.Run(t, filepath.Join("..", "testdata"), readpathlock.Analyzer, "readpathlock")
}
