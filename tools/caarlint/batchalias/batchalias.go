// Package batchalias enforces the ring hand-off contract from the batched
// ingest pipeline.
//
// PR 9's write path moves slices of work between stages by hand-off: a
// producer fills a batch, passes it to Engine.PostBatch / CheckInBatch /
// journal.AppendBatch, and reuses or recycles the memory the moment the
// call returns. Entries popped from the ingest/hot-key MPSC rings carry the
// same contract. If a callee retains an alias past the call — stores it in
// a field, sends it down a channel, or lets a spawned goroutine keep it —
// the next producer write scribbles over data another goroutine is still
// reading. The race detector only sees this when the reuse happens to
// interleave; the contract is statically checkable, so check it statically.
//
// The analyzer taints, per function:
//
//   - slice parameters of functions whose name ends in "Batch";
//   - locals assigned from ring pop/dequeue methods with pointer- or
//     slice-typed results (value-typed pops are copies and carry no
//     contract).
//
// Aliases propagate through assignment of the bare value, re-slicing
// (b[1:]), parenthesization, address-taking, and append-as-element
// (append(xs, tainted) shares the pointer). `append(dst, tainted...)` and
// copy(dst, tainted) are the sanctioned escapes: they copy the elements
// into memory the callee owns. A tainted value must not be:
//
//   - stored to a struct field,
//   - sent to a channel,
//   - used by a goroutine spawned in the function — unless a Wait() call
//     follows the go statement in the same body (the engine's fan-out
//     join: the batch outlives the goroutines, not vice versa).
//
// Deliberate ownership transfers are annotated in place:
//
//	q.pending = batch //caarlint:allow batchalias ownership transferred, producer never reuses
package batchalias

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"caar/tools/caarlint/directive"
)

const Doc = `report batch slices and ring entries retained past the hand-off

Slices received by *Batch functions and entries popped from rings are
recycled by the caller after the call returns: storing them in a field,
sending them to a channel, or capturing them in a spawned goroutine (with
no following Wait) is a use-after-recycle race. Copy with append(dst, s...)
to keep data. Annotate deliberate ownership transfers with
//caarlint:allow batchalias <reason>.`

const name = "batchalias"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// popNames are the ring-dequeue method names whose pointer/slice results
// carry the no-retain contract.
var popNames = map[string]bool{"pop": true, "Pop": true, "dequeue": true, "Dequeue": true}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := directive.New(pass)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || directive.InTestFile(pass, fd.Pos()) {
			return
		}
		tainted := map[types.Object]string{} // object -> origin description
		if strings.HasSuffix(fd.Name.Name, "Batch") {
			for _, field := range fd.Type.Params.List {
				t := pass.TypesInfo.TypeOf(field.Type)
				if t == nil {
					continue
				}
				if _, ok := t.Underlying().(*types.Slice); !ok {
					continue
				}
				for _, pn := range field.Names {
					if obj := pass.TypesInfo.Defs[pn]; obj != nil {
						tainted[obj] = "batch parameter " + pn.Name
					}
				}
			}
		}

		// taintOf returns the origin of the taint e aliases, or "".
		var taintOf func(e ast.Expr) string
		taintOf = func(e ast.Expr) string {
			switch e := e.(type) {
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[e]; obj != nil {
					return tainted[obj]
				}
			case *ast.ParenExpr:
				return taintOf(e.X)
			case *ast.SliceExpr:
				return taintOf(e.X)
			case *ast.UnaryExpr:
				return taintOf(e.X)
			case *ast.CallExpr:
				if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" {
					if e.Ellipsis.IsValid() {
						return "" // append(dst, s...) copies the elements: sanctioned
					}
					for _, a := range e.Args[1:] {
						if o := taintOf(a); o != "" {
							return o // append-as-element shares the pointer
						}
					}
				}
			}
			return ""
		}

		// popOrigin recognizes ring dequeues with pointer/slice results.
		popOrigin := func(e ast.Expr) string {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return ""
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !popNames[sel.Sel.Name] {
				return ""
			}
			callee, _ := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
			if callee == nil || callee.Type().(*types.Signature).Recv() == nil {
				return ""
			}
			t := pass.TypesInfo.TypeOf(e)
			if t == nil {
				return ""
			}
			switch t.Underlying().(type) {
			case *types.Pointer, *types.Slice:
				return "ring entry from " + sel.Sel.Name + "()"
			}
			return ""
		}

		report := func(pos ast.Node, origin, how string) {
			if !sup.Allowed(name, pos.Pos()) {
				pass.Reportf(pos.Pos(), "batchalias: %s %s; the caller recycles batch memory after the hand-off — copy with append(dst, s...) instead", origin, how)
			}
		}

		// waitFollows reports whether a WaitGroup-style Wait() call appears
		// after pos in this body: the fan-out join exemption.
		waitFollows := func(after ast.Node) bool {
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && call.Pos() > after.End() {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
						found = true
					}
				}
				return !found
			})
			return found
		}

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					lhs := n.Lhs[i]
					if origin := taintOf(rhs); origin != "" {
						switch l := lhs.(type) {
						case *ast.SelectorExpr:
							if s, ok := pass.TypesInfo.Selections[l]; ok && s.Kind() == types.FieldVal {
								report(n, origin, "retained in field "+l.Sel.Name)
							}
						case *ast.IndexExpr:
							// Storing into an element of a field-held map or
							// slice retains just the same.
							if fs, ok := l.X.(*ast.SelectorExpr); ok {
								if s, ok := pass.TypesInfo.Selections[fs]; ok && s.Kind() == types.FieldVal {
									report(n, origin, "retained in field "+fs.Sel.Name)
								}
							}
						case *ast.Ident:
							if obj := pass.TypesInfo.Defs[l]; obj != nil {
								tainted[obj] = origin
							} else if obj := pass.TypesInfo.Uses[l]; obj != nil {
								tainted[obj] = origin
							}
						}
						continue
					}
					if origin := popOrigin(rhs); origin != "" {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := pass.TypesInfo.Defs[id]; obj != nil {
								tainted[obj] = origin
							} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
								tainted[obj] = origin
							}
						}
					}
				}
			case *ast.SendStmt:
				if origin := taintOf(n.Value); origin != "" {
					report(n, origin, "sent to a channel")
				}
			case *ast.GoStmt:
				if waitFollows(n) {
					return true
				}
				for _, arg := range n.Call.Args {
					if origin := taintOf(arg); origin != "" {
						report(n, origin, "handed to a spawned goroutine")
					}
				}
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					ast.Inspect(lit.Body, func(inner ast.Node) bool {
						id, ok := inner.(*ast.Ident)
						if !ok {
							return true
						}
						if obj := pass.TypesInfo.Uses[id]; obj != nil {
							if origin := tainted[obj]; origin != "" {
								report(n, origin, "captured by a spawned goroutine")
								return false
							}
						}
						return true
					})
				}
			}
			return true
		})
	})

	sup.Finish(name)
	return nil, nil
}
