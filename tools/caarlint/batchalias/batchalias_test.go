package batchalias_test

import (
	"path/filepath"
	"testing"

	"caar/tools/caarlint/batchalias"
	"caar/tools/caarlint/internal/atest"
)

func TestAnalyzer(t *testing.T) {
	atest.Run(t, filepath.Join("..", "testdata"), batchalias.Analyzer, "batchalias")
}
