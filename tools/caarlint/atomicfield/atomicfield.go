// Package atomicfield enforces consistent synchronization discipline on
// struct fields.
//
// Two rules, both aimed at the mixed-access bugs the race detector only
// catches when the schedule cooperates:
//
//  1. A field that is ever accessed through sync/atomic function calls
//     (atomic.LoadUint64(&s.n), atomic.AddInt64(&s.n, 1), ...) must never
//     be read or written plainly anywhere else in the package. One plain
//     access next to atomic ones is a data race by construction — the
//     compiler is free to tear, cache, or reorder it. Fields of the typed
//     atomics (atomic.Uint64, atomic.Pointer[T], ...) are safe by
//     construction and need no checking: they have no plain access path.
//
//  2. A field annotated with a trailing `// guarded by <mu>` line comment
//     on its declaration must only be accessed in
//     functions where <mu> (a sibling mutex field of the same struct) is
//     held at the access point, tracked linearly through the body the same
//     way lockorder tracks held sets. Functions whose name ends in
//     "Locked" are exempt — that suffix is the repo's caller-holds-the-lock
//     convention (drainLocked, maybeSyncLocked) — as are constructors
//     (func New*/new* or any function returning the struct type), since a
//     value that hasn't been published yet has no concurrent readers.
//
// Deliberate exceptions are annotated in place:
//
//	n := s.approx //caarlint:allow atomicfield racy read is intentional, stats only
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"caar/tools/caarlint/directive"
)

const Doc = `report mixed atomic/plain field access and guarded-field access without the lock

A struct field passed to sync/atomic functions must never be accessed
plainly elsewhere; a field annotated "// guarded by mu" must only be
touched with that mutex held in the same function (functions named *Locked
and constructors are exempt). Annotate deliberate exceptions with
//caarlint:allow atomicfield <reason>.`

const name = "atomicfield"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var guardRE = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := directive.New(pass)

	// ---- collect guarded fields: "Struct.field" -> guard key "Struct.mu".
	guards := map[string]string{}
	ins.Preorder([]ast.Node{(*ast.TypeSpec)(nil)}, func(n ast.Node) {
		ts := n.(*ast.TypeSpec)
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return
		}
		for _, f := range st.Fields.List {
			// Only the trailing line comment counts: the annotation is a
			// deliberate per-field marker, not prose in a doc comment that
			// happens to mention another field's guard.
			if f.Comment == nil {
				continue
			}
			m := guardRE.FindStringSubmatch(f.Comment.Text())
			if m == nil {
				continue
			}
			for _, fname := range f.Names {
				guards[ts.Name.Name+"."+fname.Name] = ts.Name.Name + "." + m[1]
			}
		}
	})

	// ---- collect atomically-accessed fields: args &s.f to sync/atomic
	// functions. atomicArgs marks the exact &f expressions that ARE the
	// atomic access, so the plain-access scan below skips them.
	atomicFields := map[string]token.Pos{} // field key -> first atomic site
	atomicArgs := map[ast.Expr]bool{}
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		callee, _ := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
			return
		}
		if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return // typed-atomic method (atomic.Uint64.Load): safe by construction
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			sel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if key := fieldKey(pass, sel); key != "" {
				if _, dup := atomicFields[key]; !dup {
					atomicFields[key] = call.Pos()
				}
				atomicArgs[un.X] = true
			}
		}
	})

	// ---- scan every function for plain accesses to atomic fields and for
	// guarded-field accesses without the lock held.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || directive.InTestFile(pass, fd.Pos()) {
			return
		}
		exemptGuard := strings.HasSuffix(fd.Name.Name, "Locked") || isConstructor(pass, fd)

		// Held-set tracking, linear in source order; deferred unlocks hold
		// to function end (same model as lockorder).
		deferred := map[*ast.CallExpr]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if ds, ok := n.(*ast.DeferStmt); ok {
				deferred[ds.Call] = true
				if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
					ast.Inspect(lit.Body, func(n ast.Node) bool {
						if c, ok := n.(*ast.CallExpr); ok {
							deferred[c] = true
						}
						return true
					})
				}
			}
			return true
		})
		held := map[string]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				callee, _ := typeutil.Callee(pass.TypesInfo, n).(*types.Func)
				if callee == nil || !isMutexMethod(callee) {
					return true
				}
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				key := ""
				if fs, ok := sel.X.(*ast.SelectorExpr); ok {
					key = fieldKey(pass, fs)
				} else if id, ok := sel.X.(*ast.Ident); ok {
					key = id.Name
				}
				if key == "" {
					return true
				}
				switch sel.Sel.Name {
				case "Lock", "RLock", "TryLock", "TryRLock":
					held[key] = true
				case "Unlock", "RUnlock":
					if !deferred[n] {
						delete(held, key)
					}
				}
			case *ast.SelectorExpr:
				key := fieldKey(pass, n)
				if key == "" {
					return true
				}
				if pos, isAtomic := atomicFields[key]; isAtomic && !atomicArgs[n] {
					if !sup.Allowed(name, n.Pos()) {
						pass.Reportf(n.Pos(), "atomicfield: plain access to %s, which is accessed atomically at %s; use sync/atomic everywhere or neither",
							key, pass.Fset.Position(pos))
					}
					return true
				}
				if guard, ok := guards[key]; ok && !exemptGuard && !held[guard] {
					if !sup.Allowed(name, n.Pos()) {
						pass.Reportf(n.Pos(), "atomicfield: %s accessed without holding %s (declared `// guarded by %s`); hold the lock or rename the function *Locked",
							key, guard, guard[strings.Index(guard, ".")+1:])
					}
				}
			}
			return true
		})
	})

	sup.Finish(name)
	return nil, nil
}

// fieldKey names a field selection "Struct.field"; "" for anything else.
func fieldKey(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name() + "." + sel.Sel.Name
}

// isConstructor reports whether fd returns the type whose fields it might
// initialize, or follows the New*/new* naming convention.
func isConstructor(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv != nil {
		return false // methods run on published values
	}
	if strings.HasPrefix(fd.Name.Name, "New") || strings.HasPrefix(fd.Name.Name, "new") {
		return true
	}
	if fd.Type.Results == nil {
		return false
	}
	for _, r := range fd.Type.Results.List {
		t := pass.TypesInfo.TypeOf(r.Type)
		if t == nil {
			continue
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if _, ok := named.Underlying().(*types.Struct); ok && named.Obj().Pkg() == pass.Pkg {
				return true
			}
		}
	}
	return false
}

// isMutexMethod reports whether fn is a sync.Mutex / sync.RWMutex method.
func isMutexMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
