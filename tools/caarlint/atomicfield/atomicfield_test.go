package atomicfield_test

import (
	"path/filepath"
	"testing"

	"caar/tools/caarlint/atomicfield"
	"caar/tools/caarlint/internal/atest"
)

func TestAnalyzer(t *testing.T) {
	atest.Run(t, filepath.Join("..", "testdata"), atomicfield.Analyzer, "atomicfield")
}
