package fsyncrename_test

import (
	"path/filepath"
	"testing"

	"caar/tools/caarlint/fsyncrename"
	"caar/tools/caarlint/internal/atest"
)

func TestAnalyzer(t *testing.T) {
	atest.Run(t, filepath.Join("..", "testdata"), fsyncrename.Analyzer, "fsyncrename")
}
