// Package fsyncrename enforces the write-fsync-rename durability protocol.
//
// Atomically replacing a file (the snapshot, a rotated journal) only
// guarantees the *new* contents survive a crash if the data is fsynced
// before the rename: rename is a metadata operation, and most filesystems
// will happily commit the rename while the file's blocks are still dirty in
// the page cache, leaving a zero-length or torn file behind after power
// loss. PR 1's SaveSnapshot got this right; this analyzer keeps it right by
// reporting any os.Rename in a function with no preceding (*os.File).Sync
// call.
//
// The check is intra-function and position-based — a Sync anywhere earlier
// in the same function (including one guarding an early return) satisfies
// it. That is deliberately conservative in the safe direction for this
// codebase's style, where the temp-file write, sync, and rename live in one
// function; code that splits the protocol across helpers documents itself
// with //caarlint:allow fsyncrename <reason>.
//
// The analyzer also enforces the second half of the protocol: the rename
// itself is a directory-entry operation, durable only once the parent
// directory is fsynced. A function's last os.Rename must therefore be
// followed (position-wise, same function) by either another (*os.File).Sync
// — the opened-directory sync — or a call to a helper named FsyncDir /
// fsyncDir, the codebase's canonical directory-fsync wrappers
// (journal.FsyncDir and the snapshot-local fsyncDir).
package fsyncrename

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"caar/tools/caarlint/directive"
)

const Doc = `report os.Rename calls not preceded by an (*os.File).Sync in the same function

A rename that publishes un-fsynced data is only crash-atomic for the name,
not the bytes. Every os.Rename must be dominated by a File.Sync of the data
being published, and the last rename in a function must be followed by a
directory fsync (a File.Sync of the opened directory, or a FsyncDir call) —
the rename is a directory-entry operation an OS crash can otherwise roll
back.`

const name = "fsyncrename"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := directive.New(pass)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || directive.InTestFile(pass, fd.Pos()) {
			return
		}
		type renameCall struct{ call *ast.CallExpr }
		var renames []renameCall
		var syncPositions []int    // offsets of File.Sync calls, in token order
		var dirSyncPositions []int // File.Sync or FsyncDir/fsyncDir helper calls

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
			if !ok || fn == nil {
				return true
			}
			switch {
			case isOSRename(fn):
				renames = append(renames, renameCall{call})
			case isFileSync(fn):
				syncPositions = append(syncPositions, int(call.Pos()))
				dirSyncPositions = append(dirSyncPositions, int(call.Pos()))
			case isFsyncDirHelper(fn):
				dirSyncPositions = append(dirSyncPositions, int(call.Pos()))
			}
			return true
		})

		for _, rc := range renames {
			synced := false
			for _, sp := range syncPositions {
				if sp < int(rc.call.Pos()) {
					synced = true
					break
				}
			}
			if synced || sup.Allowed(name, rc.call.Pos()) {
				continue
			}
			pass.Reportf(rc.call.Pos(),
				"fsyncrename: os.Rename with no preceding (*os.File).Sync in %s; a rename only publishes durable bytes after the data is fsynced — sync the written file first",
				fd.Name.Name)
		}

		// Directory-fsync half of the protocol: the rename is a
		// directory-entry operation, durable only once the parent directory
		// is fsynced after it. Checking only the function's last rename keeps
		// rotate-then-publish sequences (rename old aside, rename new in,
		// one dir sync) to a single required sync.
		if len(renames) > 0 {
			last := renames[len(renames)-1].call
			dirSynced := false
			for _, sp := range dirSyncPositions {
				if sp > int(last.Pos()) {
					dirSynced = true
					break
				}
			}
			if !dirSynced && !sup.Allowed(name, last.Pos()) {
				pass.Reportf(last.Pos(),
					"fsyncrename: os.Rename not followed by a directory fsync in %s; the rename is a directory-entry operation — sync the parent directory (File.Sync on the opened dir, or FsyncDir) after the last rename",
					fd.Name.Name)
			}
		}
	})

	sup.Finish(name)
	return nil, nil
}

// isFsyncDirHelper matches the codebase's directory-fsync wrappers by name:
// journal.FsyncDir and package-local fsyncDir helpers. Name-based on
// purpose — the helpers live in different packages and the analyzer must
// not import them.
func isFsyncDirHelper(fn *types.Func) bool {
	return fn.Name() == "FsyncDir" || fn.Name() == "fsyncDir"
}

// isOSRename matches the os.Rename function.
func isOSRename(fn *types.Func) bool {
	return fn.Name() == "Rename" && fn.Pkg() != nil && fn.Pkg().Path() == "os" &&
		fn.Type().(*types.Signature).Recv() == nil
}

// isFileSync matches the (*os.File).Sync method.
func isFileSync(fn *types.Func) bool {
	if fn.Name() != "Sync" || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "File"
}
