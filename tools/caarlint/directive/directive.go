// Package directive implements caarlint's suppression comments.
//
// A finding may be silenced with a narrowly-scoped marker in the style of
// staticcheck's //lint:ignore:
//
//	//caarlint:allow <analyzer> <reason>
//
// placed either at the end of the offending line or on its own line
// immediately above. The analyzer name must match exactly and the reason is
// mandatory — an unexplained suppression is itself reported, so every
// exception in the tree documents why the invariant does not apply.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

const prefix = "//caarlint:allow"

// entry is one parsed allow directive.
type entry struct {
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// Suppressor answers "is this finding suppressed?" for one pass. Build it
// once per run with New; it scans every comment in the package up front.
type Suppressor struct {
	pass *analysis.Pass
	// byLine maps file name + line to the directives scoped to that line
	// (a directive covers its own line and the line below).
	byLine map[lineKey][]*entry
	all    []*entry
}

type lineKey struct {
	file string
	line int
}

// New scans the pass's files for //caarlint:allow comments.
func New(pass *analysis.Pass) *Suppressor {
	s := &Suppressor{pass: pass, byLine: make(map[lineKey][]*entry)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, prefix))
				name, reason, _ := strings.Cut(rest, " ")
				// A nested line comment (an analysistest-style want
				// assertion in fixtures) is not part of the reason.
				if i := strings.Index(reason, "//"); i >= 0 {
					reason = reason[:i]
				}
				e := &entry{analyzer: name, reason: strings.TrimSpace(reason), pos: c.Pos()}
				s.all = append(s.all, e)
				p := pass.Fset.Position(c.Pos())
				// The directive covers its own line (trailing comment) and
				// the next line (comment above the statement).
				s.byLine[lineKey{p.Filename, p.Line}] = append(s.byLine[lineKey{p.Filename, p.Line}], e)
				s.byLine[lineKey{p.Filename, p.Line + 1}] = append(s.byLine[lineKey{p.Filename, p.Line + 1}], e)
			}
		}
	}
	return s
}

// Allowed reports whether a finding from the named analyzer at pos is
// suppressed, and marks the matching directive as used.
func (s *Suppressor) Allowed(analyzer string, pos token.Pos) bool {
	p := s.pass.Fset.Position(pos)
	for _, e := range s.byLine[lineKey{p.Filename, p.Line}] {
		if e.analyzer == analyzer {
			e.used = true
			return true
		}
	}
	return false
}

// Finish reports malformed directives for the named analyzer: a directive
// with no reason, or one that matched no finding this run (stale). Call it
// at the end of the analyzer's Run so suppressions cannot rot silently.
func (s *Suppressor) Finish(analyzer string) {
	for _, e := range s.all {
		if e.analyzer != analyzer {
			continue
		}
		if e.reason == "" {
			s.pass.Reportf(e.pos, "%s: caarlint:allow without a reason; document why the invariant does not apply", analyzer)
			continue
		}
		if !e.used {
			s.pass.Reportf(e.pos, "%s: stale caarlint:allow directive: no finding on the next line", analyzer)
		}
	}
}

// InTestFile reports whether pos is inside a _test.go file; analyzers whose
// invariants only bind production code use it to skip test fixtures.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// File returns the *ast.File containing pos.
func File(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
