// Package metricname enforces the observability registry's naming contract
// at every obs call site.
//
// The Prometheus exposition is the system's operational API: dashboards,
// alerts, and run-books key on metric names, so a misnamed metric is an
// interface break that no Go test notices. The rules mechanized here are
// the ones PR 2 adopted:
//
//   - every metric name is a compile-time constant with the caar_ prefix,
//     spelled snake_case;
//   - counters (Counter, CounterVec, CounterFunc, CounterFloatFunc) end in
//     _total; gauges and histograms never do;
//   - histograms carry an explicit base unit (_seconds, _bytes or _ratio);
//   - no name ends in the exposition-reserved _bucket/_sum/_count suffixes;
//   - label names are compile-time constant snake_case and never the
//     reserved "le"/"quantile";
//   - every metric registered outside a test carries non-empty help text.
//
// Test files are exempt: fixtures register deliberately hostile names.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"caar/tools/caarlint/directive"
)

const Doc = `enforce caar_ metric naming rules at obs registry call sites

Checks every call to the obs.Registry registration methods: constant
caar_-prefixed snake_case names, _total on counters (and only counters),
explicit base units on histograms, no reserved suffixes or label names, and
non-empty help text.`

const name = "metricname"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var prefix = "caar_"

func init() {
	Analyzer.Flags.StringVar(&prefix, "prefix", prefix, "required metric name prefix")
}

// registration describes one Registry method's argument layout.
type registration struct {
	kind      string // "counter", "gauge", "histogram"
	labelsMin int    // index of the first label argument; -1 when unlabeled
}

var methods = map[string]registration{
	"Counter":          {"counter", -1},
	"CounterVec":       {"counter", 2},
	"CounterFunc":      {"counter", -1},
	"CounterFloatFunc": {"counter", -1},
	"Gauge":            {"gauge", -1},
	"GaugeVec":         {"gauge", 2},
	"GaugeFunc":        {"gauge", -1},
	"Histogram":        {"histogram", -1},
	"HistogramVec":     {"histogram", 3},
}

var (
	nameRE  = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	labelRE = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

// reservedSuffixes collide with series the histogram exposition synthesizes.
var reservedSuffixes = []string{"_bucket", "_sum", "_count"}

// unitSuffixes are the base units a histogram must declare.
var unitSuffixes = []string{"_seconds", "_bytes", "_ratio"}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := directive.New(pass)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if fn == nil || !ok {
			return
		}
		reg, ok := methods[fn.Name()]
		if !ok || !isRegistryMethod(fn) {
			return
		}
		if directive.InTestFile(pass, call.Pos()) {
			return
		}
		if len(call.Args) < 2 {
			return // does not type-check anyway
		}
		report := func(pos token.Pos, format string, args ...any) {
			if sup.Allowed(name, pos) {
				return
			}
			pass.Reportf(pos, "metricname: "+format, args...)
		}

		nameArg := call.Args[0]
		name, isConst := constString(pass.TypesInfo, nameArg)
		if !isConst {
			report(nameArg.Pos(), "metric name must be a compile-time constant so dashboards can grep for it")
		} else {
			checkName(report, nameArg.Pos(), name, reg, fn.Name())
		}

		if help, ok := constString(pass.TypesInfo, call.Args[1]); ok && strings.TrimSpace(help) == "" {
			report(call.Args[1].Pos(), "metric %q registered without help text", name)
		}

		if reg.labelsMin >= 0 {
			for _, arg := range call.Args[reg.labelsMin:] {
				label, ok := constString(pass.TypesInfo, arg)
				if !ok {
					report(arg.Pos(), "label names must be compile-time constants (constant label sets keep cardinality auditable)")
					continue
				}
				if !labelRE.MatchString(label) {
					report(arg.Pos(), "label name %q is not snake_case", label)
				}
				if label == "le" || label == "quantile" {
					report(arg.Pos(), "label name %q is reserved by the exposition format", label)
				}
			}
		}
	})

	sup.Finish(name)
	return nil, nil
}

func checkName(report func(pos token.Pos, format string, args ...any), arg token.Pos, name string, reg registration, method string) {
	if !strings.HasPrefix(name, prefix) {
		report(arg, "metric %q lacks the %q prefix", name, prefix)
		return
	}
	if !nameRE.MatchString(name) {
		report(arg, "metric %q is not snake_case", name)
		return
	}
	for _, suf := range reservedSuffixes {
		if strings.HasSuffix(name, suf) {
			report(arg, "metric %q ends in exposition-reserved suffix %q", name, suf)
			return
		}
	}
	switch reg.kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			report(arg, "counter %q must end in _total (%s registers a counter)", name, method)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			report(arg, "gauge %q must not end in _total; _total promises a monotone counter — register it as a counter or rename it", name)
		}
	case "histogram":
		if strings.HasSuffix(name, "_total") {
			report(arg, "histogram %q must not end in _total", name)
			return
		}
		hasUnit := false
		for _, suf := range unitSuffixes {
			if strings.HasSuffix(name, suf) {
				hasUnit = true
				break
			}
		}
		if !hasUnit {
			report(arg, "histogram %q must declare a base unit suffix (%s)", name, strings.Join(unitSuffixes, ", "))
		}
	}
}

// isRegistryMethod reports whether fn is a method on obs.Registry (or one of
// its Vec types, whose With/label args are not checked here). Matching is by
// receiver type name + package name so the analyzer works against the
// fixtures' local obs package as well as caar/obs.
func isRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

// constString evaluates e as a compile-time string constant.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
