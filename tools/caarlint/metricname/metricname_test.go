package metricname_test

import (
	"path/filepath"
	"testing"

	"caar/tools/caarlint/internal/atest"
	"caar/tools/caarlint/metricname"
)

func TestAnalyzer(t *testing.T) {
	atest.Run(t, filepath.Join("..", "testdata"), metricname.Analyzer, "metricname")
}
