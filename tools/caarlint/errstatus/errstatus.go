// Package errstatus enforces the serving layer's error→status contract.
//
// PR 1 centralized engine-error mapping in one table (the fail function):
// unknown references are 404, duplicates 409, durability failures 503, and
// everything else 400 — nothing the engine returns maps to 500, which is
// reserved for panics caught by the recovery middleware. The contract rots
// one handler at a time: somebody ad-hoc-maps an engine error with
// httpError(w, 400, err.Error()) and unknown-user quietly stops being a
// 404 on that endpoint.
//
// Two rules, both scoped to the package under analysis:
//
//  1. An error value produced by a method call on one of the engine API
//     interfaces (API, PolicyAPI, TraceAPI by default) must not be passed —
//     directly or via err.Error() — to the ad-hoc httpError writer; it must
//     flow through the fail table.
//  2. httpError must never be called with http.StatusInternalServerError (or
//     a literal 500): the recovery middleware owns 500s. The one legitimate
//     site annotates itself with //caarlint:allow errstatus.
package errstatus

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"caar/tools/caarlint/directive"
)

const Doc = `require engine errors to flow through the error→status table

Reports (1) errors returned by engine API interface methods that are passed
to httpError instead of fail, and (2) any httpError call with status 500,
which belongs exclusively to the panic-recovery middleware.`

const name = "errstatus"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	apiTypes = "API,PolicyAPI,TraceAPI"
	sinkName = "fail"
	adhoc    = "httpError"
)

func init() {
	Analyzer.Flags.StringVar(&apiTypes, "apitypes", apiTypes, "comma-separated interface type names whose method errors must flow through the sink")
	Analyzer.Flags.StringVar(&sinkName, "sink", sinkName, "function implementing the error→status table")
	Analyzer.Flags.StringVar(&adhoc, "adhoc", adhoc, "ad-hoc status writer engine errors must not reach")
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := directive.New(pass)

	apiSet := make(map[string]bool)
	for _, t := range strings.Split(apiTypes, ",") {
		if t = strings.TrimSpace(t); t != "" {
			apiSet[t] = true
		}
	}

	// assigns records, per error variable, every assignment position and
	// whether the value came from an engine API call. At a use site the
	// *latest assignment before the use* decides taint, so a handler that
	// first does `at, err := s.at(...)` and later reuses err for an engine
	// call is judged per site, not per variable.
	type assign struct {
		pos     token.Pos
		fromAPI bool
	}
	assigns := make(map[types.Object][]assign)

	// isAPICall reports whether call invokes a method through one of the
	// configured interface types declared in this package.
	isAPICall := func(call *ast.CallExpr) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		recv, ok := pass.TypesInfo.Types[sel.X]
		if !ok {
			return false
		}
		t := recv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return apiSet[obj.Name()] && obj.Pkg() == pass.Pkg && types.IsInterface(named)
	}

	// Pass 1: record every assignment to an error-typed variable, tagging
	// those whose right-hand side is an engine API call. Handles
	// `err := s.eng.X(...)`, `recs, err = pa.Y(...)` and
	// `if err := s.eng.X(...); err != nil` forms.
	ins.Preorder([]ast.Node{(*ast.AssignStmt)(nil)}, func(n ast.Node) {
		as := n.(*ast.AssignStmt)
		if len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		fromAPI := isAPICall(call)
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil {
				continue
			}
			if types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
				assigns[obj] = append(assigns[obj], assign{pos: as.Pos(), fromAPI: fromAPI})
			}
		}
	})

	// taintedAt reports whether obj's latest recorded assignment before pos
	// came from an engine API call. Control flow is approximated by token
	// order, which matches the sequential early-return style of the handlers.
	taintedAt := func(obj types.Object, pos token.Pos) bool {
		latest, fromAPI := token.NoPos, false
		for _, a := range assigns[obj] {
			if a.pos < pos && a.pos > latest {
				latest, fromAPI = a.pos, a.fromAPI
			}
		}
		return fromAPI
	}

	// mentionsEngineErr reports whether e references an error value whose
	// dominating assignment is an engine API call (the identifier itself or
	// a method call on it, e.g. err.Error()).
	mentionsEngineErr := func(e ast.Expr, usePos token.Pos) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil && taintedAt(obj, usePos) {
					found = true
					return false
				}
			}
			return !found
		})
		return found
	}

	// Pass 2: flag ad-hoc writes of engine errors and any 500.
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || fn == nil || fn.Name() != adhoc || fn.Pkg() != pass.Pkg {
			return
		}
		if directive.InTestFile(pass, call.Pos()) {
			return
		}
		if len(call.Args) >= 2 {
			if tv, ok := pass.TypesInfo.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
				if code, ok := constant.Int64Val(tv.Value); ok && code >= 500 && code != 503 {
					if !sup.Allowed(name, call.Pos()) {
						pass.Reportf(call.Pos(),
							"errstatus: %s with status %d; 5xx (except 503 from the durability table) is reserved for the panic-recovery middleware — engine failures map through %s",
							adhoc, code, sinkName)
					}
					return
				}
			}
		}
		for _, arg := range call.Args {
			if mentionsEngineErr(arg, call.Pos()) {
				if !sup.Allowed(name, call.Pos()) {
					pass.Reportf(call.Pos(),
						"errstatus: engine API error passed to %s, bypassing the error→status table; call %s(w, err) so unknown references stay 404, duplicates 409 and durability failures 503",
						adhoc, sinkName)
				}
				return
			}
		}
	})

	sup.Finish(name)
	return nil, nil
}
