package errstatus_test

import (
	"path/filepath"
	"testing"

	"caar/tools/caarlint/errstatus"
	"caar/tools/caarlint/internal/atest"
)

func TestAnalyzer(t *testing.T) {
	atest.Run(t, filepath.Join("..", "testdata"), errstatus.Analyzer, "errstatus")
}
