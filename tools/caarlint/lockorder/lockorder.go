// Package lockorder enforces a canonical lock-acquisition order and the
// absence of lock cycles.
//
// PRs 4, 8 and 9 gave the engine several cooperating mutexes: the
// copy-on-write directory writer lock (Engine.dirMu), the per-shard core
// locks (shard.mu), the journal writer lock (Writer.mu) and the hot-key
// dimension locks. None of them may ever nest against the canonical order —
// an ABBA inversion is a deadlock that no unit test reliably reproduces,
// because it needs two goroutines to interleave exactly wrong.
//
// The analyzer scans every function body in source order, tracking which
// mutexes are held at each point (an Unlock in a branch conservatively
// releases; a deferred Unlock holds to function end), and follows calls to
// same-package functions ("call-graph-lite") so a lock taken three frames
// down still registers as nested. Every nested acquisition becomes an edge
// held→acquired in a per-package lock graph. It then reports:
//
//   - acquisitions that contradict the canonical order checked in at
//     tools/caarlint/lockorder/order.txt (outermost first);
//   - self edges (a mutex acquired while already held — self-deadlock);
//   - cycles among the remaining edges (ABBA and longer).
//
// Locks are named by the struct type declaring the mutex field
// ("Engine.dirMu", "shard.mu") or by the variable name for non-field
// mutexes, so the graph is stable across receivers and call sites.
// Deliberate nesting outside the canonical list is annotated in place:
//
//	e.statsMu.Lock() //caarlint:allow lockorder stats snapshot nests read-only under dirMu
package lockorder

import (
	_ "embed"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"caar/tools/caarlint/directive"
)

const Doc = `report lock-order inversions and lock cycles

Builds a per-package lock-acquisition graph (which mutexes are acquired
while which others are held, including through calls to same-package
functions) and reports acquisitions contradicting the canonical order in
tools/caarlint/lockorder/order.txt, self-deadlocks, and cycles. Annotate
deliberate exceptions with //caarlint:allow lockorder <reason>.`

const name = "lockorder"

//go:embed order.txt
var embeddedOrder string

// order is the canonical acquisition order, outermost first, comma
// separated. Defaults to the checked-in order.txt; overridable so other
// repos can declare their own hierarchy.
var order = canonicalList(embeddedOrder)

func init() {
	Analyzer.Flags.StringVar(&order, "order", order, "comma-separated canonical lock order, outermost first (default: embedded order.txt)")
}

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// canonicalList flattens order.txt (one lock per line, '#' comments) into
// the comma-separated flag default.
func canonicalList(text string) string {
	var names []string
	for _, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if line = strings.TrimSpace(line); line != "" {
			names = append(names, line)
		}
	}
	return strings.Join(names, ",")
}

// acquireMethods and releaseMethods are the sync.Mutex/RWMutex entry points.
var acquireMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}
var releaseMethods = map[string]bool{
	"Unlock": true, "RUnlock": true,
}

// edge is one observed nesting: to was acquired while from was held.
type edge struct{ from, to string }

// site is where an edge was first observed, with the call chain when the
// acquisition happened inside a callee.
type site struct {
	pos token.Pos
	via string // "" for a direct acquisition, callee name otherwise
}

// pendingCall is a same-package call made while locks were held; resolved
// against the callee's transitive acquisition set after all bodies are
// scanned.
type pendingCall struct {
	callee *types.Func
	held   []string
	pos    token.Pos
}

type funcScan struct {
	direct  map[string]token.Pos // locks acquired anywhere in the body
	callees []*types.Func        // all same-package callees (for transitivity)
	pending []pendingCall
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := directive.New(pass)

	canon := map[string]int{}
	for i, n := range strings.Split(order, ",") {
		if n = strings.TrimSpace(n); n != "" {
			canon[n] = i
		}
	}

	// Every site of an edge is kept: suppressing one occurrence of an
	// inversion must not silence the same inversion elsewhere.
	edges := map[edge][]site{}
	scans := map[*types.Func]*funcScan{}
	report := func(e edge, s site) {
		for _, prev := range edges[e] {
			if prev.pos == s.pos {
				return
			}
		}
		edges[e] = append(edges[e], s)
	}

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || directive.InTestFile(pass, fd.Pos()) {
			return
		}
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		fs := &funcScan{direct: map[string]token.Pos{}}
		scans[fn] = fs

		// Deferred calls release at return, not where they appear in the
		// source: collect them so the scan below keeps their locks held.
		deferred := map[*ast.CallExpr]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if ds, ok := n.(*ast.DeferStmt); ok {
				deferred[ds.Call] = true
				if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
					ast.Inspect(lit.Body, func(n ast.Node) bool {
						if c, ok := n.(*ast.CallExpr); ok {
							deferred[c] = true
						}
						return true
					})
				}
			}
			return true
		})

		var held []string // acquisition order
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, _ := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
			if callee == nil {
				return true
			}
			if mutexMethod(callee) {
				key := lockKey(pass, call)
				if key == "" {
					return true
				}
				switch {
				case acquireMethods[callee.Name()]:
					for _, h := range held {
						report(edge{h, key}, site{pos: call.Pos()})
					}
					if contains(held, key) {
						report(edge{key, key}, site{pos: call.Pos()})
					} else {
						held = append(held, key)
					}
				case releaseMethods[callee.Name()] && !deferred[call]:
					held = remove(held, key)
				}
				return true
			}
			if callee.Pkg() == pass.Pkg {
				fs.callees = append(fs.callees, callee)
				if len(held) > 0 {
					fs.pending = append(fs.pending, pendingCall{
						callee: callee,
						held:   append([]string(nil), held...),
						pos:    call.Pos(),
					})
				}
			}
			return true
		})
		// Record every acquisition in the body for the transitive set.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, _ := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
			if callee == nil || !mutexMethod(callee) || !acquireMethods[callee.Name()] {
				return true
			}
			if key := lockKey(pass, call); key != "" {
				if _, dup := fs.direct[key]; !dup {
					fs.direct[key] = call.Pos()
				}
			}
			return true
		})
	})

	// Transitive acquisition sets, memoized over the same-package call graph.
	memo := map[*types.Func]map[string]bool{}
	var acquires func(fn *types.Func, seen map[*types.Func]bool) map[string]bool
	acquires = func(fn *types.Func, seen map[*types.Func]bool) map[string]bool {
		if m, ok := memo[fn]; ok {
			return m
		}
		if seen[fn] {
			return nil
		}
		seen[fn] = true
		fs := scans[fn]
		if fs == nil {
			return nil
		}
		out := map[string]bool{}
		for k := range fs.direct {
			out[k] = true
		}
		for _, c := range fs.callees {
			for k := range acquires(c, seen) {
				out[k] = true
			}
		}
		memo[fn] = out
		return out
	}
	for fn, fs := range scans {
		for _, pc := range fs.pending {
			for k := range acquires(pc.callee, map[*types.Func]bool{fn: true}) {
				for _, h := range pc.held {
					report(edge{h, k}, site{pos: pc.pos, via: pc.callee.Name()})
				}
			}
		}
	}

	// Classify. Canonical-order violations are reported first and removed
	// from the cycle graph: fixing the inversion breaks the cycle, so one
	// finding per root cause.
	diag := func(pos token.Pos, format string, args ...any) {
		if !sup.Allowed(name, pos) {
			pass.Reportf(pos, "lockorder: "+format, args...)
		}
	}
	remaining := map[edge][]site{}
	for e, sites := range edges {
		if e.from == e.to {
			for _, s := range sites {
				diag(s.pos, "%s acquired%s while already held — self-deadlock", e.to, viaSuffix(s))
			}
			continue
		}
		fi, fok := canon[e.from]
		ti, tok := canon[e.to]
		if fok && tok && fi > ti {
			for _, s := range sites {
				diag(s.pos, "%s acquired%s while holding %s, against the canonical order in tools/caarlint/lockorder/order.txt (%s before %s)",
					e.to, viaSuffix(s), e.from, e.to, e.from)
			}
			continue
		}
		remaining[e] = sites
	}
	// Cycles among the remaining edges: an edge is part of a cycle when its
	// head can reach its tail.
	adj := map[string][]string{}
	for e := range remaining {
		adj[e.from] = append(adj[e.from], e.to)
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, adj[n]...)
		}
		return false
	}
	for e, sites := range remaining {
		if reaches(e.to, e.from) {
			for _, s := range sites {
				diag(s.pos, "lock cycle: %s acquired%s while holding %s, but %s is elsewhere held while acquiring %s — ABBA deadlock",
					e.to, viaSuffix(s), e.from, e.to, e.from)
			}
		}
	}

	sup.Finish(name)
	return nil, nil
}

// viaSuffix renders the call-chain note for indirect acquisitions.
func viaSuffix(s site) string {
	if s.via == "" {
		return ""
	}
	return fmt.Sprintf(" (via call to %s)", s.via)
}

// mutexMethod reports whether fn is a sync.Mutex / sync.RWMutex method.
func mutexMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockKey names the mutex being locked: "<StructType>.<field>" for mutex
// fields, the variable name otherwise, "" when the receiver shape is not
// recognized.
func lockKey(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		// base.field — name by the struct type that declares the field.
		if fsel, ok := pass.TypesInfo.Selections[x]; ok && fsel.Kind() == types.FieldVal {
			recv := fsel.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				return named.Obj().Name() + "." + x.Sel.Name
			}
		}
		return x.Sel.Name
	case *ast.Ident:
		return x.Name
	}
	return ""
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// remove deletes the most recent occurrence of v.
func remove(s []string, v string) []string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
