package lockorder_test

import (
	"path/filepath"
	"testing"

	"caar/tools/caarlint/internal/atest"
	"caar/tools/caarlint/lockorder"
)

func TestAnalyzer(t *testing.T) {
	atest.Run(t, filepath.Join("..", "testdata"), lockorder.Analyzer, "lockorder")
}
