// Package atest is a miniature analysistest: it loads fixture packages from
// a testdata/src tree with go/parser + go/types, runs an analyzer (and its
// transitive Requires) over them, and checks the produced diagnostics
// against `// want "regexp"` comments in the fixtures.
//
// It exists because the full golang.org/x/tools/go/analysis/analysistest
// depends on go/packages, which shells out to the go command per fixture
// package; this harness resolves fixture-local imports itself and reads the
// standard library through the source importer, so `go test ./...` in the
// tools module stays hermetic and offline.
//
// Conventions (a strict subset of analysistest's):
//
//   - fixtures live in <testdata>/src/<importpath>/*.go; an import of a path
//     that exists under testdata/src resolves to that fixture package, and
//     anything else falls through to GOROOT source;
//   - a comment `// want "rx"` (one or more quoted Go strings) on a line
//     asserts that exactly those diagnostics are reported on that line, each
//     matching its regexp; diagnostics on lines with no want comment, and
//     want comments matching no diagnostic, fail the test.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// loader caches type-checked fixture packages for one Run invocation.
type loader struct {
	testdata string
	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*pkgInfo
}

// pkgInfo is one loaded fixture package with everything a Pass needs.
type pkgInfo struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// Import lets loader serve as the types.Importer for fixture packages,
// shadowing GOROOT for any path that exists under testdata/src.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.testdata, "src", path)); err == nil {
		pi, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pi.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*pkgInfo, error) {
	if pi, ok := l.pkgs[path]; ok {
		return pi, nil
	}
	dir := filepath.Join(l.testdata, "src", path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("atest: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("atest: type-checking %s: %w", path, err)
	}
	pi := &pkgInfo{pkg: pkg, files: files, info: info}
	l.pkgs[path] = pi
	return pi, nil
}

// runAnalyzer executes a (running its Requires first, with memoized results)
// and returns the diagnostics it reported.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, pi *pkgInfo, fset *token.FileSet) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]any)
	var exec func(a *analysis.Analyzer, report func(analysis.Diagnostic)) any
	exec = func(a *analysis.Analyzer, report func(analysis.Diagnostic)) any {
		if r, ok := results[a]; ok {
			return r
		}
		deps := make(map[*analysis.Analyzer]any)
		for _, req := range a.Requires {
			// Diagnostics from prerequisite analyzers are dropped, as in
			// real drivers.
			deps[req] = exec(req, func(analysis.Diagnostic) {})
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      pi.files,
			Pkg:        pi.pkg,
			TypesInfo:  pi.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   deps,
			Report:     report,
			ReadFile:   os.ReadFile,
		}
		r, err := a.Run(pass)
		if err != nil {
			t.Fatalf("atest: analyzer %s: %v", a.Name, err)
		}
		results[a] = r
		return r
	}
	exec(a, func(d analysis.Diagnostic) { diags = append(diags, d) })
	return diags
}

// wantRE extracts the quoted expectation strings from a want comment.
var wantRE = regexp.MustCompile(`(?:\x60[^\x60]*\x60|"(?:[^"\\]|\\.)*")`)

// expectations parses `// want ...` comments from the fixture files,
// returning regexps keyed by file:line.
func expectations(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len("// want "):]
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				for _, q := range wantRE.FindAllString(rest, -1) {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("atest: bad want string %s at %s: %v", q, key, err)
						}
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("atest: bad want regexp %q at %s: %v", pat, key, err)
					}
					wants[key] = append(wants[key], rx)
				}
			}
		}
	}
	return wants
}

// Run loads each fixture package under testdata/src, applies the analyzer,
// and reports mismatches between diagnostics and want comments as test
// errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	l := &loader{
		testdata: testdata,
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     make(map[string]*pkgInfo),
	}
	for _, path := range pkgpaths {
		t.Run(path, func(t *testing.T) {
			pi, err := l.load(path)
			if err != nil {
				t.Fatal(err)
			}
			diags := runAnalyzer(t, a, pi, fset)
			wants := expectations(t, fset, pi.files)

			// Match each diagnostic against the want set for its line.
			matched := make(map[string][]bool)
			for key, rxs := range wants {
				matched[key] = make([]bool, len(rxs))
			}
			for _, d := range diags {
				p := fset.Position(d.Pos)
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				ok := false
				for i, rx := range wants[key] {
					if !matched[key][i] && rx.MatchString(d.Message) {
						matched[key][i] = true
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
				}
			}
			var keys []string
			for key := range wants {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			for _, key := range keys {
				for i, rx := range wants[key] {
					if !matched[key][i] {
						t.Errorf("%s: expected diagnostic matching %q, got none", key, rx)
					}
				}
			}
		})
	}
}
