package caar

import (
	"runtime"
	"sort"

	"caar/internal/adstore"
)

// Invariant export: a machine-checkable cut of engine state, served by the
// HTTP layer at GET /v1/invariants. The crash-recovery soak harness
// (cmd/adsoak) compares this report against its client-side ledger of
// acknowledged writes after every kill/restart cycle:
//
//  1. acked posts/ads survive — PostsDelivered and Ads bound-checked
//     against the ledger,
//  2. campaign spend is conserved — Campaigns[*].Spent never exceeds the
//     acked spend plus in-doubt requests, never exceeds Budget,
//  3. no ad serves after its RemoveAd was acked — Ads must not contain it,
//  4. memory stays bounded — CachedMessages vs WindowCapacity, the trace
//     ring vs TraceCapacity, HeapAllocBytes flat across cycles.
//
// Everything here is either a lock-free atomic read, a read of the
// immutable published directory, or takes the same locks Stats() already
// takes; the report is a consistent-enough cut for bound checks (exact
// cuts are what Snapshot is for).

// CampaignState is one campaign's budget accounting in an InvariantReport.
type CampaignState struct {
	Name   string  `json:"name"`
	Budget float64 `json:"budget"`
	Spent  float64 `json:"spent"`
}

// InvariantReport is the state export behind GET /v1/invariants.
type InvariantReport struct {
	Users          int             `json:"users"`
	FollowEdges    int             `json:"follow_edges"`
	Ads            []string        `json:"ads"` // live (servable) ad names, sorted
	Campaigns      []CampaignState `json:"campaigns"`
	PostsDelivered uint64          `json:"posts_delivered"`
	CheckIns       uint64          `json:"check_ins"`
	VocabTerms     int             `json:"vocab_terms"`
	VocabDocs      int             `json:"vocab_docs"`

	// Bounded-structure occupancy vs. capacity.
	CachedMessages   int `json:"cached_messages"`
	WindowCapacity   int `json:"window_capacity"` // users × configured window size
	CandidateEntries int `json:"candidate_buffer_entries"`
	TraceCount       int `json:"trace_count"`
	TraceCapacity    int `json:"trace_capacity"`

	// Process-level memory signals.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	Goroutines     int    `json:"goroutines"`

	// ApplyFirstOps lists journal ops the durability layer applies before
	// appending (everything else is journal-first / write-ahead). An ack for
	// one of these carries a weaker guarantee — the mutation may exist in
	// memory without a journal entry if the append fails — so the soak
	// ledger classifies such acks as uncertain rather than guaranteed.
	// Populated by the journal's Logged wrapper; empty for a bare engine.
	ApplyFirstOps []string `json:"apply_first_ops,omitempty"`
}

// Invariants assembles the report. Safe to call concurrently with serving
// traffic.
func (e *Engine) Invariants() InvariantReport {
	st := e.Stats()
	rep := InvariantReport{
		Users:            st.Users,
		FollowEdges:      st.FollowEdges,
		PostsDelivered:   st.PostsDelivered,
		CheckIns:         st.CheckIns,
		VocabTerms:       e.pipeline.Vocab.Size(),
		VocabDocs:        e.pipeline.Vocab.Docs(),
		CachedMessages:   st.CachedMessages,
		WindowCapacity:   st.Users * e.cfg.WindowSize,
		CandidateEntries: st.CandidateBufferEntries,
	}

	d := e.dir.Load()
	rep.Ads = make([]string, 0, len(d.adIDs))
	for name := range d.adIDs {
		rep.Ads = append(rep.Ads, name)
	}
	sort.Strings(rep.Ads)

	e.store.ForEachCampaign(func(c *adstore.Campaign) {
		rep.Campaigns = append(rep.Campaigns, CampaignState{
			Name: c.Name, Budget: c.Budget, Spent: c.Spent(),
		})
	})
	sort.Slice(rep.Campaigns, func(i, j int) bool { return rep.Campaigns[i].Name < rep.Campaigns[j].Name })

	if e.tracer != nil {
		rep.TraceCount = e.tracer.Len()
		rep.TraceCapacity = e.tracer.Capacity()
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep.HeapAllocBytes = ms.HeapAlloc
	rep.Goroutines = runtime.NumGoroutine()
	return rep
}
