package caar

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"caar/internal/adstore"
	"caar/internal/core"
	"caar/internal/faultinject"
	"caar/internal/feed"
	"caar/internal/geo"
	"caar/internal/textproc"
	"caar/internal/timeslot"
	"caar/obs"
	"caar/obs/hotkey"
	"caar/obs/trace"
)

// Engine is the public recommender. It is safe for concurrent use: the text
// pipeline and ad store are concurrency-safe, per-shard locks serialize
// engine-state mutation while allowing posts to fan out across shards in
// parallel, and the name-resolution state (user handles, ad names,
// campaigns) lives in an immutable copy-on-write directory published with
// an atomic pointer — the serving read path resolves names without taking
// any global lock.
type Engine struct {
	cfg      Config
	pipeline *textproc.Pipeline
	store    *adstore.Store
	graph    *feed.Graph

	// dir is the current name-resolution snapshot. Readers load it once
	// per request; writers clone-mutate-publish under dirMu. nextAd is
	// also guarded by dirMu.
	dir    atomic.Pointer[directory]
	dirMu  sync.Mutex
	nextAd adstore.AdID // guarded by dirMu

	shards      []shard
	msgSeq      atomic.Int64
	impressions *impressionLog
	trends      *trendTracker

	postsDelivered atomic.Uint64
	checkIns       atomic.Uint64

	metrics *obs.Registry
	obsm    *engineMetrics
	tracer  *trace.Store

	// hot is the heavy-hitter telemetry tracker; nil when disabled. All
	// record calls on it are lock-free enqueues (nil-safe no-ops when
	// disabled), so the serving path's lock-freedom is preserved.
	hot *hotkey.Tracker
}

// adRef is a directory entry for one live ad: its external name and its
// campaign (empty for campaign-less ads). Keeping the campaign here lets
// the policy stage resolve it without consulting the (locked) ad store.
type adRef struct {
	name     string
	campaign string
}

// directory is the engine's immutable name-resolution snapshot: user
// handles, ad names and ad campaigns. A directory is never mutated after
// being published via Engine.dir — writers build a new one under
// Engine.dirMu and atomically swap it in, so readers work against one
// consistent view with zero lock acquisitions and writers never block
// readers.
type directory struct {
	users map[string]feed.UserID
	names []string // handle by internal user ID
	adIDs map[string]adstore.AdID
	ads   map[adstore.AdID]adRef
}

func newDirectory() *directory {
	return &directory{
		users: make(map[string]feed.UserID),
		adIDs: make(map[string]adstore.AdID),
		ads:   make(map[adstore.AdID]adRef),
	}
}

// clone deep-copies the directory so a writer can mutate its private copy
// before publishing. Cost is O(users+ads), paid only on control-plane
// writes (AddUser/AddAd/RemoveAd), never on the serving path.
func (d *directory) clone() *directory {
	nd := &directory{
		users: make(map[string]feed.UserID, len(d.users)+1),
		names: append(make([]string, 0, len(d.names)+1), d.names...),
		adIDs: make(map[string]adstore.AdID, len(d.adIDs)+1),
		ads:   make(map[adstore.AdID]adRef, len(d.ads)+1),
	}
	for h, id := range d.users {
		nd.users[h] = id
	}
	for n, id := range d.adIDs {
		nd.adIDs[n] = id
	}
	for id, ref := range d.ads {
		nd.ads[id] = ref
	}
	return nd
}

// withAd returns a copy of the directory with one ad mapping added.
func (d *directory) withAd(name string, id adstore.AdID, campaign string) *directory {
	nd := d.clone()
	nd.adIDs[name] = id
	nd.ads[id] = adRef{name: name, campaign: campaign}
	return nd
}

// withoutAd returns a copy of the directory with one ad mapping removed.
func (d *directory) withoutAd(name string, id adstore.AdID) *directory {
	nd := d.clone()
	delete(nd.adIDs, name)
	delete(nd.ads, id)
	return nd
}

// lookup resolves a user handle in this snapshot.
func (d *directory) lookup(handle string) (feed.UserID, error) {
	id, ok := d.users[handle]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownUser, handle)
	}
	return id, nil
}

// userName resolves an internal user ID back to its handle.
func (d *directory) userName(u feed.UserID) string {
	if int(u) < len(d.names) {
		return d.names[u]
	}
	return fmt.Sprintf("user-%d", u)
}

// campaignOf resolves an external ad ID to its campaign name ("" when
// campaign-less or withdrawn from this snapshot).
func (d *directory) campaignOf(adID string) string {
	id, ok := d.adIDs[adID]
	if !ok {
		return ""
	}
	return d.ads[id].campaign
}

// shard is one engine instance plus its serializing lock and the trace
// sink its stage recorder reads. shard is copied by value; the pointers
// keep all copies sharing one lock and one sink.
type shard struct {
	mu   *sync.Mutex
	eng  core.Shardable
	sink *coreTraceSink
}

// coreTraceSink routes the stage spans measured under the shard lock into
// the active request's trace. The tr field is written (set and cleared) and
// read only while the shard lock is held — TopAds is serialized by that
// lock — so no atomics are needed.
type coreTraceSink struct {
	tr *trace.Trace
}

// Common errors returned by Engine methods.
var (
	ErrUnknownUser     = errors.New("caar: unknown user")
	ErrUnknownAd       = errors.New("caar: unknown ad")
	ErrUnknownCampaign = errors.New("caar: unknown campaign")
	ErrDuplicate       = errors.New("caar: duplicate identifier")
)

// Open creates an engine from a configuration.
func Open(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nShards := cfg.Shards
	if nShards < 1 {
		nShards = 1
	}
	e := &Engine{
		cfg:         cfg,
		pipeline:    textproc.NewPipeline(),
		store:       adstore.NewStore(),
		graph:       feed.NewGraph(),
		nextAd:      1,
		impressions: newImpressionLog(),
		trends:      newTrendTracker(),
	}
	e.dir.Store(newDirectory())
	scoring := cfg.scoring()
	region := geo.Rect(cfg.Region)
	rows, cols := cfg.GridRows, cfg.GridCols
	if rows < 1 {
		rows = 32
	}
	if cols < 1 {
		cols = 32
	}
	for i := 0; i < nShards; i++ {
		var (
			eng core.Shardable
			err error
		)
		switch cfg.Algorithm {
		case AlgorithmRS:
			eng, err = core.NewRS(scoring, e.store)
		case AlgorithmIL:
			eng, err = core.NewIL(scoring, e.store, region, rows, cols)
		default:
			eng, err = core.NewCAP(scoring, e.store, region, rows, cols, core.CAPOptions{
				FanoutSharing: cfg.FanoutSharing,
				RebuildEvery:  cfg.RebuildEvery,
			})
		}
		if err != nil {
			return nil, err
		}
		e.shards = append(e.shards, shard{mu: new(sync.Mutex), eng: eng, sink: new(coreTraceSink)})
	}

	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e.metrics = reg
	e.obsm = newEngineMetrics(reg, e)
	e.tracer = cfg.Tracer
	if e.tracer != nil {
		e.tracer.RegisterMetrics(reg)
	}
	if !cfg.DisableHotKeys {
		hot, err := hotkey.New(hotkey.Config{Window: cfg.HotKeyWindow, Metrics: reg})
		if err != nil {
			return nil, err
		}
		// Display names resolve at query time against whatever directory
		// snapshot is current then — one lock-free atomic load, no
		// serving-path locks. Terms resolve through the vocabulary's
		// read lock, which only queries (never record sites) pay.
		hot.SetResolver(hotkey.DimUsers, func(key uint64) string {
			return e.dir.Load().userName(feed.UserID(key))
		})
		hot.SetResolver(hotkey.DimPosters, func(key uint64) string {
			return e.dir.Load().userName(feed.UserID(key))
		})
		hot.SetResolver(hotkey.DimTerms, func(key uint64) string {
			return e.pipeline.Vocab.Term(textproc.TermID(key))
		})
		e.hot = hot
	}
	for _, sh := range e.shards {
		if ss, ok := sh.eng.(core.StageSetter); ok {
			sink := sh.sink
			ss.SetStageRecorder(func(s core.Stage, d time.Duration, in, out int) {
				e.obsm.recordCoreStage(s, d)
				if tr := sink.tr; tr != nil {
					tr.AddSpan(s.String(), d, in, out)
				}
			})
		}
	}
	return e, nil
}

// Algorithm returns the configured algorithm name.
func (e *Engine) Algorithm() Algorithm {
	if e.cfg.Algorithm == "" {
		return AlgorithmCAP
	}
	return e.cfg.Algorithm
}

func (e *Engine) shardOf(u feed.UserID) shard {
	return e.shards[int(u)%len(e.shards)]
}

// AddUser registers a user handle. Duplicate handles are rejected.
func (e *Engine) AddUser(handle string) error {
	if handle == "" {
		return fmt.Errorf("%w: empty user handle", ErrBadConfig)
	}
	e.dirMu.Lock()
	unwatch := faultinject.WatchLock("engine.dirMu")
	d := e.dir.Load()
	if _, dup := d.users[handle]; dup {
		unwatch()
		e.dirMu.Unlock()
		return fmt.Errorf("%w: user %q", ErrDuplicate, handle)
	}
	id := feed.UserID(len(d.names))
	nd := d.clone()
	nd.users[handle] = id
	nd.names = append(nd.names, handle)
	e.dir.Store(nd)
	unwatch()
	e.dirMu.Unlock()

	e.graph.AddUser(id)
	sh := e.shardOf(id)
	sh.mu.Lock()
	sh.eng.AddUser(id)
	sh.mu.Unlock()
	return nil
}

func (e *Engine) lookupUser(handle string) (feed.UserID, error) {
	return e.dir.Load().lookup(handle)
}

// Follow makes follower receive followee's posts.
func (e *Engine) Follow(follower, followee string) error {
	fid, err := e.lookupUser(follower)
	if err != nil {
		return err
	}
	pid, err := e.lookupUser(followee)
	if err != nil {
		return err
	}
	return e.graph.Follow(fid, pid)
}

// Unfollow removes a follow edge.
func (e *Engine) Unfollow(follower, followee string) error {
	fid, err := e.lookupUser(follower)
	if err != nil {
		return err
	}
	pid, err := e.lookupUser(followee)
	if err != nil {
		return err
	}
	return e.graph.Unfollow(fid, pid)
}

// AddCampaign registers an ad campaign with a paced budget over a flight
// window.
func (e *Engine) AddCampaign(name string, budget float64, start, end time.Time) error {
	c, err := adstore.NewCampaign(name, budget, start, end)
	if err != nil {
		return err
	}
	if err := e.store.AddCampaign(c); err != nil {
		if errors.Is(err, adstore.ErrDuplicateCampaign) {
			return fmt.Errorf("%w: campaign %q", ErrDuplicate, name)
		}
		return err
	}
	return nil
}

// AddAd validates and registers an advertisement.
func (e *Engine) AddAd(ad Ad) error {
	if ad.ID == "" {
		return fmt.Errorf("%w: empty ad ID", ErrBadConfig)
	}
	vec := e.vectorize(ad.Text)
	if len(vec) == 0 {
		return fmt.Errorf("caar: ad %q has no indexable keywords in %q", ad.ID, ad.Text)
	}
	slots := timeslot.AllSlots
	if len(ad.Slots) > 0 {
		slots = 0
		for _, s := range ad.Slots {
			sl, ok := s.internal()
			if !ok {
				return fmt.Errorf("%w: unknown slot %q", ErrBadConfig, s)
			}
			slots |= timeslot.NewSet(sl)
		}
	}
	internal := &adstore.Ad{
		Campaign: ad.Campaign,
		Vec:      vec,
		Slots:    slots,
		Bid:      ad.Bid,
	}
	if ad.Target == nil {
		internal.Global = true
	} else {
		internal.Target = geo.Circle{
			Center:   geo.Point{Lat: ad.Target.Lat, Lng: ad.Target.Lng},
			RadiusKm: ad.Target.RadiusKm,
		}
	}

	var err error
	if internal.ID, err = e.mapAd(ad.ID, ad.Campaign); err != nil {
		return err
	}

	if err := internal.Validate(); err != nil {
		e.unmapAd(ad.ID, internal.ID)
		return err
	}
	if err := e.store.Add(internal); err != nil {
		e.unmapAd(ad.ID, internal.ID)
		if errors.Is(err, adstore.ErrUnknownCampaign) {
			return fmt.Errorf("%w: %q (ad %q)", ErrUnknownCampaign, ad.Campaign, ad.ID)
		}
		return err
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.eng.RegisterAd(internal)
		sh.mu.Unlock()
	}
	return nil
}

// mapAd reserves the next internal ID for an external ad name and publishes
// the mapping in a new directory snapshot. The name must be free.
func (e *Engine) mapAd(name, campaign string) (adstore.AdID, error) {
	e.dirMu.Lock()
	defer e.dirMu.Unlock()
	defer faultinject.WatchLock("engine.dirMu")()
	d := e.dir.Load()
	if _, dup := d.adIDs[name]; dup {
		return 0, fmt.Errorf("%w: ad %q", ErrDuplicate, name)
	}
	id := e.nextAd
	e.nextAd++
	e.dir.Store(d.withAd(name, id, campaign))
	return id, nil
}

func (e *Engine) unmapAd(name string, id adstore.AdID) {
	e.dirMu.Lock()
	unwatch := faultinject.WatchLock("engine.dirMu")
	e.dir.Store(e.dir.Load().withoutAd(name, id))
	unwatch()
	e.dirMu.Unlock()
}

// RemoveAd withdraws an advertisement. The directory snapshot without the
// ad is published *before* the store and shard indexes are torn down: the
// moment RemoveAd commits, no in-flight recommend can resolve the name in
// toRecommendations, so a withdrawn ad is never served even while its
// index entries are still being cleaned up. (The reverse order — the seed
// behavior — let a concurrent recommend serve an ad that RemoveAd had
// already deleted from the store.)
func (e *Engine) RemoveAd(id string) error {
	e.dirMu.Lock()
	unwatch := faultinject.WatchLock("engine.dirMu")
	d := e.dir.Load()
	internalID, ok := d.adIDs[id]
	if !ok {
		unwatch()
		e.dirMu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownAd, id)
	}
	campaign := d.ads[internalID].campaign
	e.dir.Store(d.withoutAd(id, internalID))
	unwatch()
	e.dirMu.Unlock()

	if err := e.store.Remove(internalID); err != nil {
		// Roll the unmap back so the directory and the store stay
		// consistent: the ad is still live.
		e.dirMu.Lock()
		unwatch := faultinject.WatchLock("engine.dirMu")
		e.dir.Store(e.dir.Load().withAd(id, internalID, campaign))
		unwatch()
		e.dirMu.Unlock()
		return err
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.eng.UnregisterAd(internalID)
		sh.mu.Unlock()
	}
	return nil
}

// CheckIn updates a user's location context. It is the single-item form of
// CheckInBatch and shares its implementation.
func (e *Engine) CheckIn(user string, lat, lng float64, at time.Time) error {
	return e.CheckInBatch([]CheckInRequest{{User: user, Lat: lat, Lng: lng, At: at}})[0]
}

// CheckInBatch applies a batch of location updates, grouped by destination
// shard so each shard lock is taken once per batch. The returned slice has
// one entry per request (nil on success), in request order; within a shard,
// updates apply in request order.
func (e *Engine) CheckInBatch(reqs []CheckInRequest) []error {
	errs := make([]error, len(reqs))
	if len(reqs) == 0 {
		return errs
	}
	d := e.dir.Load()
	type slot struct {
		item int
		uid  feed.UserID
	}
	groups := make([][]slot, len(e.shards))
	for i, r := range reqs {
		uid, err := d.lookup(r.User)
		if err != nil {
			errs[i] = err
			continue
		}
		si := int(uid) % len(e.shards)
		groups[si] = append(groups[si], slot{item: i, uid: uid})
	}
	for si, g := range groups {
		if len(g) == 0 {
			continue
		}
		sh := e.shards[si]
		sh.mu.Lock()
		for _, s := range g {
			r := reqs[s.item]
			if err := sh.eng.CheckIn(s.uid, geo.Point{Lat: r.Lat, Lng: r.Lng}, r.At); err != nil {
				errs[s.item] = err
				continue
			}
			e.checkIns.Add(1)
		}
		sh.mu.Unlock()
	}
	return errs
}

// ValidateUser reports whether a handle resolves in the current directory
// snapshot. It is lock-free (one atomic pointer load) so the asynchronous
// ingest accept path can reject unknown authors before enqueueing without
// touching any shard lock.
func (e *Engine) ValidateUser(handle string) error {
	_, err := e.dir.Load().lookup(handle)
	return err
}

// ValidateCheckIn reports whether a check-in would be accepted: the user
// resolves and the point lies inside the configured region. Like
// ValidateUser it is lock-free, so the asynchronous ingest path can return
// the same rejections a synchronous CheckIn would — before acknowledging —
// without touching any shard lock.
func (e *Engine) ValidateCheckIn(user string, lat, lng float64) error {
	if _, err := e.dir.Load().lookup(user); err != nil {
		return err
	}
	r := e.cfg.Region
	if lat < r.MinLat || lat > r.MaxLat || lng < r.MinLng || lng > r.MaxLng {
		return fmt.Errorf("caar: check-in (%v, %v) outside region", lat, lng)
	}
	return nil
}

// Post publishes a message: the text is semantically processed once and the
// message fans out to the author's followers (and the author's own feed).
// With Shards > 1, the fan-out is processed in parallel across shards. Post
// is the single-message form of PostBatch and shares its implementation.
func (e *Engine) Post(author, text string, at time.Time) error {
	return e.PostBatch([]PostRequest{{Author: author, Text: text, At: at}})[0]
}

// PostBatch publishes a batch of messages with grouped fan-out: the batch is
// partitioned by destination shard and each shard's lock is taken once per
// batch, updating every affected follower window under that single
// acquisition, instead of one lock round-trip per post. The returned slice
// has one entry per request (nil on success), in request order; within a
// shard, messages apply in request order. The asynchronous ingest pipeline
// (package ingest) drains its ring through this entry point.
//
// Trending and hot-key telemetry are recorded only for posts whose delivery
// succeeded — a failed fan-out must not pollute Trending or /v1/hot with
// phantom counts.
func (e *Engine) PostBatch(reqs []PostRequest) []error {
	errs := make([]error, len(reqs))
	if len(reqs) == 0 {
		return errs
	}
	// One directory snapshot serves the whole batch: every lookup and every
	// continuous recommendation below resolves names against the same view.
	d := e.dir.Load()
	msgs := make([]feed.Message, len(reqs))
	for i, r := range reqs {
		uid, err := d.lookup(r.Author)
		if err != nil {
			errs[i] = err
			continue
		}
		msgs[i] = feed.Message{
			ID:     feed.MessageID(e.msgSeq.Add(1)),
			Author: uid,
			Time:   r.At,
			Vec:    e.vectorize(r.Text),
		}
	}
	e.deliver(d, reqs, msgs, errs)
	for i := range reqs {
		if errs[i] != nil {
			continue
		}
		// Telemetry strictly after successful delivery (a failed deliver used
		// to leave phantom terms in Trending and /v1/hot?dim=terms).
		e.trends.observe(timeslot.Of(reqs[i].At), msgs[i].Vec)
		for term := range msgs[i].Vec {
			e.hot.RecordKey(hotkey.DimTerms, uint64(term), 1)
		}
	}
	return errs
}

// shardDelivery is one message's fan-out slice destined for a single shard.
type shardDelivery struct {
	item  int // index into the batch
	users []feed.UserID
}

// continuousRec is one continuous-mode recommendation computed under the
// shard lock and delivered to the OnRecommend callback after it is released.
type continuousRec struct {
	user feed.UserID
	recs []core.Scored
}

// deliver fans a batch of messages out to their follower windows, grouped so
// each shard lock is acquired once per batch. Per-item errors land in errs
// (first error wins for an item split across shards). The continuous-mode
// OnRecommend callback is invoked strictly outside the shard lock: a slow
// consumer costs only its own goroutine, never the shard's fan-out or the
// writers queued behind it. Each affected user gets one callback per batch
// (after its last message of the batch), not one per message.
func (e *Engine) deliver(d *directory, reqs []PostRequest, msgs []feed.Message, errs []error) {
	groups := make([][]shardDelivery, len(e.shards))
	for i := range reqs {
		if errs[i] != nil {
			continue
		}
		uid := msgs[i].Author
		followers := e.graph.Followers(uid)
		all := make([]feed.UserID, 0, len(followers)+1)
		all = append(all, uid) // the author sees their own post
		all = append(all, followers...)
		perShard := make(map[int][]feed.UserID, len(e.shards))
		for _, u := range all {
			si := int(u) % len(e.shards)
			perShard[si] = append(perShard[si], u)
		}
		for si, users := range perShard {
			groups[si] = append(groups[si], shardDelivery{item: i, users: users})
		}
	}

	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
	)
	setErr := func(item int, err error) {
		errMu.Lock() //caarlint:allow readpathlock per-item error collection off the fast path
		if errs[item] == nil {
			errs[item] = err
		}
		errMu.Unlock()
	}
	ok := make([]atomic.Bool, len(reqs))
	run := func(si int, work []shardDelivery) {
		sh := e.shards[si]
		var out []continuousRec
		affected := make(map[feed.UserID]time.Time)
		sh.mu.Lock() //caarlint:allow readpathlock per-shard core lock is the designed serialization point
		for _, wk := range work {
			if err := sh.eng.Deliver(msgs[wk.item], wk.users); err != nil {
				setErr(wk.item, err)
				continue
			}
			ok[wk.item].Store(true)
			if e.cfg.ContinuousK > 0 {
				for _, u := range wk.users {
					affected[u] = msgs[wk.item].Time
				}
			}
		}
		for u, at := range affected {
			recs, err := sh.eng.TopAds(u, e.cfg.ContinuousK, at)
			if err != nil {
				e.obsm.continuousErrors.Inc()
				continue
			}
			out = append(out, continuousRec{user: u, recs: recs})
		}
		sh.mu.Unlock()
		// Callback outside the lock: collected under it, invoked after it.
		for _, c := range out {
			e.cfg.OnRecommend(d.userName(c.user), e.toRecommendations(d, c.recs))
		}
	}
	busy := 0
	for _, work := range groups {
		if len(work) > 0 {
			busy++
		}
	}
	for si, work := range groups {
		if len(work) == 0 {
			continue
		}
		if busy == 1 {
			run(si, work)
		} else {
			wg.Add(1)
			go func(si int, work []shardDelivery) {
				defer wg.Done()
				run(si, work)
			}(si, work)
		}
	}
	wg.Wait()
	for i := range reqs {
		if errs[i] != nil || !ok[i].Load() {
			continue
		}
		// Fan-out cost telemetry: the author is charged one unit per feed
		// window written. Lock-free enqueue; nil-safe no-op when disabled.
		n := e.graph.FollowerCount(msgs[i].Author) + 1
		e.hot.RecordKey(hotkey.DimPosters, uint64(msgs[i].Author), uint64(n))
		e.postsDelivered.Add(1)
	}
}

// Recommend returns the top-k ads for a user at the given time.
func (e *Engine) Recommend(user string, k int, at time.Time) ([]Recommendation, error) {
	recs, _, err := e.recommend(user, k, at, ServingPolicy{}, TraceRequest{})
	return recs, err
}

// recommend is the unified serving pipeline behind Recommend,
// RecommendWithPolicy and RecommendTraced: lookup → (shard-lock wait) →
// core ranking (retrieve/score/topk, recorded by the shard engine) →
// result mapping → policy filtering. Every stage lands in the per-stage
// latency histograms — the policy stage too, even with a zero policy, so
// each query touches the whole stage family and the stage counts stay
// mutually comparable. When a tracer is configured (or the request forces
// an explanation) the same stage boundaries also feed the request's flight
// record; with tracing off, tr stays nil and the extra cost is one nil
// check per stage.
func (e *Engine) recommend(user string, k int, at time.Time, policy ServingPolicy, treq TraceRequest) ([]Recommendation, *trace.Trace, error) {
	start := time.Now()
	// Serving-path latency fault: disarmed this is one atomic load. The soak
	// and capture-smoke harnesses arm it (CAAR_DELAYS=serve.recommend:5ms) to
	// verify the SLO watchdog trips and the resulting capture bundle's CPU
	// profile attributes the stall to the injected site.
	faultinject.DelayPoint("serve.recommend")
	tr := e.beginTrace(treq, user, k, at, start)
	// One atomic load pins the name-resolution view for the whole request;
	// no stage below takes a global lock.
	d := e.dir.Load()
	uid, err := d.lookup(user)
	if err != nil {
		e.obsm.recommendErrors.Inc()
		return nil, e.finishTrace(tr, time.Since(start), err), err
	}
	if k < 1 {
		e.obsm.recommendErrors.Inc()
		err := fmt.Errorf("%w: k=%d", ErrBadConfig, k)
		return nil, e.finishTrace(tr, time.Since(start), err), err
	}
	// Hot-key telemetry: one lock-free bounded-queue enqueue (nil-safe
	// no-op when disabled).
	e.hot.RecordKey(hotkey.DimUsers, uint64(uid), 1)
	span := e.obsm.stage(e.obsm.stageLookup, start)
	if tr != nil {
		tr.AddSpan("lookup", span.Sub(start), 1, 1)
	}

	fetch := k
	if policy.enabled() {
		fetch = k * policy.overfetch()
	}
	sh := e.shardOf(uid)
	sh.mu.Lock() //caarlint:allow readpathlock per-shard core lock is the designed serialization point
	locked := time.Now()
	e.obsm.lockWaitSeconds.ObserveDuration(locked.Sub(span))
	if tr != nil {
		tr.Shard = int(uid) % len(e.shards)
		tr.LockWaitSeconds = locked.Sub(span).Seconds()
		sh.sink.tr = tr
	}
	scored, err := sh.eng.TopAds(uid, fetch, at)
	if tr != nil {
		sh.sink.tr = nil
	}
	sh.mu.Unlock()
	if err != nil {
		e.obsm.recommendErrors.Inc()
		return nil, e.finishTrace(tr, time.Since(start), err), err
	}

	span = time.Now()
	recs := e.toRecommendations(d, scored)
	mapped := e.obsm.stage(e.obsm.stageMap, span)
	if tr != nil {
		tr.AddSpan("map", mapped.Sub(span), len(scored), len(recs))
	}
	out := e.applyPolicy(d, user, k, at, policy, recs, tr)
	done := e.obsm.stage(e.obsm.stagePolicy, mapped)
	if tr != nil {
		tr.AddSpan("policy", done.Sub(mapped), len(recs), len(out))
		for _, rec := range out {
			tr.AddAd(trace.AdScore{AdID: rec.AdID, Score: rec.Score, Text: rec.Text, Geo: rec.Geo, Bid: rec.Bid})
		}
	}

	elapsed := time.Since(start)
	e.obsm.recommendSeconds.ObserveDuration(elapsed)
	e.obsm.recommends.Inc()
	return out, e.finishTrace(tr, elapsed, nil), nil
}

// ServeImpression bills one impression of an ad against its campaign's
// paced budget. It reports whether the impression may be shown; false means
// the campaign is out of (released) budget.
func (e *Engine) ServeImpression(adID string, at time.Time) (bool, error) {
	d := e.dir.Load()
	internalID, ok := d.adIDs[adID]
	if !ok {
		e.obsm.impressions.With("error").Inc()
		return false, fmt.Errorf("%w: %q", ErrUnknownAd, adID)
	}
	served, err := e.store.ChargeImpression(internalID, at)
	switch {
	case err != nil:
		e.obsm.impressions.With("error").Inc()
	case served:
		e.obsm.impressions.With("billed").Inc()
		// Spend telemetry per campaign (per ad name for campaign-less
		// ads): lock-free enqueue against the directory snapshot already
		// loaded above.
		ref := d.ads[internalID]
		name := ref.campaign
		if name == "" {
			name = ref.name
		}
		e.hot.Record(hotkey.DimCampaigns, name, 1)
	default:
		e.obsm.impressions.With("budget_exhausted").Inc()
	}
	return served, err
}

// toRecommendations maps core results to the public type using the
// caller's directory snapshot — no locks, no lookups beyond the map reads.
func (e *Engine) toRecommendations(d *directory, scored []core.Scored) []Recommendation {
	out := make([]Recommendation, 0, len(scored))
	for _, s := range scored {
		ref, ok := d.ads[s.Ad]
		if !ok {
			continue // withdrawn concurrently
		}
		out = append(out, Recommendation{
			AdID:  ref.name,
			Score: s.Score,
			Text:  s.Text,
			Geo:   s.Geo,
			Bid:   s.Bid,
		})
	}
	return out
}

// Stats returns a monitoring snapshot.
func (e *Engine) Stats() Stats {
	st := Stats{
		Ads:            e.store.Len(),
		FollowEdges:    e.graph.Edges(),
		PostsDelivered: e.postsDelivered.Load(),
		CheckIns:       e.checkIns.Load(),
		Shards:         len(e.shards),
	}
	st.Users = len(e.dir.Load().users)
	for _, sh := range e.shards {
		sh.mu.Lock()
		if c, ok := sh.eng.(*core.CAP); ok {
			st.CachedMessages += c.CachedMessages()
			st.CandidateBufferEntries += c.TotalBufferEntries()
		}
		sh.mu.Unlock()
	}
	return st
}
