package caar

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"caar/internal/adstore"
	"caar/internal/core"
	"caar/internal/faultinject"
	"caar/internal/feed"
	"caar/internal/geo"
	"caar/internal/textproc"
	"caar/internal/timeslot"
	"caar/obs"
	"caar/obs/hotkey"
	"caar/obs/trace"
)

// Engine is the public recommender. It is safe for concurrent use: the text
// pipeline and ad store are concurrency-safe, per-shard locks serialize
// engine-state mutation while allowing posts to fan out across shards in
// parallel, and the name-resolution state (user handles, ad names,
// campaigns) lives in an immutable copy-on-write directory published with
// an atomic pointer — the serving read path resolves names without taking
// any global lock.
type Engine struct {
	cfg      Config
	pipeline *textproc.Pipeline
	store    *adstore.Store
	graph    *feed.Graph

	// dir is the current name-resolution snapshot. Readers load it once
	// per request; writers clone-mutate-publish under dirMu. nextAd is
	// also guarded by dirMu.
	dir    atomic.Pointer[directory]
	dirMu  sync.Mutex
	nextAd adstore.AdID

	shards      []shard
	msgSeq      atomic.Int64
	impressions *impressionLog
	trends      *trendTracker

	postsDelivered atomic.Uint64
	checkIns       atomic.Uint64

	metrics *obs.Registry
	obsm    *engineMetrics
	tracer  *trace.Store

	// hot is the heavy-hitter telemetry tracker; nil when disabled. All
	// record calls on it are lock-free enqueues (nil-safe no-ops when
	// disabled), so the serving path's lock-freedom is preserved.
	hot *hotkey.Tracker
}

// adRef is a directory entry for one live ad: its external name and its
// campaign (empty for campaign-less ads). Keeping the campaign here lets
// the policy stage resolve it without consulting the (locked) ad store.
type adRef struct {
	name     string
	campaign string
}

// directory is the engine's immutable name-resolution snapshot: user
// handles, ad names and ad campaigns. A directory is never mutated after
// being published via Engine.dir — writers build a new one under
// Engine.dirMu and atomically swap it in, so readers work against one
// consistent view with zero lock acquisitions and writers never block
// readers.
type directory struct {
	users map[string]feed.UserID
	names []string // handle by internal user ID
	adIDs map[string]adstore.AdID
	ads   map[adstore.AdID]adRef
}

func newDirectory() *directory {
	return &directory{
		users: make(map[string]feed.UserID),
		adIDs: make(map[string]adstore.AdID),
		ads:   make(map[adstore.AdID]adRef),
	}
}

// clone deep-copies the directory so a writer can mutate its private copy
// before publishing. Cost is O(users+ads), paid only on control-plane
// writes (AddUser/AddAd/RemoveAd), never on the serving path.
func (d *directory) clone() *directory {
	nd := &directory{
		users: make(map[string]feed.UserID, len(d.users)+1),
		names: append(make([]string, 0, len(d.names)+1), d.names...),
		adIDs: make(map[string]adstore.AdID, len(d.adIDs)+1),
		ads:   make(map[adstore.AdID]adRef, len(d.ads)+1),
	}
	for h, id := range d.users {
		nd.users[h] = id
	}
	for n, id := range d.adIDs {
		nd.adIDs[n] = id
	}
	for id, ref := range d.ads {
		nd.ads[id] = ref
	}
	return nd
}

// withAd returns a copy of the directory with one ad mapping added.
func (d *directory) withAd(name string, id adstore.AdID, campaign string) *directory {
	nd := d.clone()
	nd.adIDs[name] = id
	nd.ads[id] = adRef{name: name, campaign: campaign}
	return nd
}

// withoutAd returns a copy of the directory with one ad mapping removed.
func (d *directory) withoutAd(name string, id adstore.AdID) *directory {
	nd := d.clone()
	delete(nd.adIDs, name)
	delete(nd.ads, id)
	return nd
}

// lookup resolves a user handle in this snapshot.
func (d *directory) lookup(handle string) (feed.UserID, error) {
	id, ok := d.users[handle]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownUser, handle)
	}
	return id, nil
}

// userName resolves an internal user ID back to its handle.
func (d *directory) userName(u feed.UserID) string {
	if int(u) < len(d.names) {
		return d.names[u]
	}
	return fmt.Sprintf("user-%d", u)
}

// campaignOf resolves an external ad ID to its campaign name ("" when
// campaign-less or withdrawn from this snapshot).
func (d *directory) campaignOf(adID string) string {
	id, ok := d.adIDs[adID]
	if !ok {
		return ""
	}
	return d.ads[id].campaign
}

// shard is one engine instance plus its serializing lock and the trace
// sink its stage recorder reads. shard is copied by value; the pointers
// keep all copies sharing one lock and one sink.
type shard struct {
	mu   *sync.Mutex
	eng  core.Shardable
	sink *coreTraceSink
}

// coreTraceSink routes the stage spans measured under the shard lock into
// the active request's trace. The tr field is written (set and cleared) and
// read only while the shard lock is held — TopAds is serialized by that
// lock — so no atomics are needed.
type coreTraceSink struct {
	tr *trace.Trace
}

// Common errors returned by Engine methods.
var (
	ErrUnknownUser     = errors.New("caar: unknown user")
	ErrUnknownAd       = errors.New("caar: unknown ad")
	ErrUnknownCampaign = errors.New("caar: unknown campaign")
	ErrDuplicate       = errors.New("caar: duplicate identifier")
)

// Open creates an engine from a configuration.
func Open(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nShards := cfg.Shards
	if nShards < 1 {
		nShards = 1
	}
	e := &Engine{
		cfg:         cfg,
		pipeline:    textproc.NewPipeline(),
		store:       adstore.NewStore(),
		graph:       feed.NewGraph(),
		nextAd:      1,
		impressions: newImpressionLog(),
		trends:      newTrendTracker(),
	}
	e.dir.Store(newDirectory())
	scoring := cfg.scoring()
	region := geo.Rect(cfg.Region)
	rows, cols := cfg.GridRows, cfg.GridCols
	if rows < 1 {
		rows = 32
	}
	if cols < 1 {
		cols = 32
	}
	for i := 0; i < nShards; i++ {
		var (
			eng core.Shardable
			err error
		)
		switch cfg.Algorithm {
		case AlgorithmRS:
			eng, err = core.NewRS(scoring, e.store)
		case AlgorithmIL:
			eng, err = core.NewIL(scoring, e.store, region, rows, cols)
		default:
			eng, err = core.NewCAP(scoring, e.store, region, rows, cols, core.CAPOptions{
				FanoutSharing: cfg.FanoutSharing,
				RebuildEvery:  cfg.RebuildEvery,
			})
		}
		if err != nil {
			return nil, err
		}
		e.shards = append(e.shards, shard{mu: new(sync.Mutex), eng: eng, sink: new(coreTraceSink)})
	}

	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e.metrics = reg
	e.obsm = newEngineMetrics(reg, e)
	e.tracer = cfg.Tracer
	if e.tracer != nil {
		e.tracer.RegisterMetrics(reg)
	}
	if !cfg.DisableHotKeys {
		hot, err := hotkey.New(hotkey.Config{Window: cfg.HotKeyWindow, Metrics: reg})
		if err != nil {
			return nil, err
		}
		// Display names resolve at query time against whatever directory
		// snapshot is current then — one lock-free atomic load, no
		// serving-path locks. Terms resolve through the vocabulary's
		// read lock, which only queries (never record sites) pay.
		hot.SetResolver(hotkey.DimUsers, func(key uint64) string {
			return e.dir.Load().userName(feed.UserID(key))
		})
		hot.SetResolver(hotkey.DimPosters, func(key uint64) string {
			return e.dir.Load().userName(feed.UserID(key))
		})
		hot.SetResolver(hotkey.DimTerms, func(key uint64) string {
			return e.pipeline.Vocab.Term(textproc.TermID(key))
		})
		e.hot = hot
	}
	for _, sh := range e.shards {
		if ss, ok := sh.eng.(core.StageSetter); ok {
			sink := sh.sink
			ss.SetStageRecorder(func(s core.Stage, d time.Duration, in, out int) {
				e.obsm.recordCoreStage(s, d)
				if tr := sink.tr; tr != nil {
					tr.AddSpan(s.String(), d, in, out)
				}
			})
		}
	}
	return e, nil
}

// Algorithm returns the configured algorithm name.
func (e *Engine) Algorithm() Algorithm {
	if e.cfg.Algorithm == "" {
		return AlgorithmCAP
	}
	return e.cfg.Algorithm
}

func (e *Engine) shardOf(u feed.UserID) shard {
	return e.shards[int(u)%len(e.shards)]
}

// AddUser registers a user handle. Duplicate handles are rejected.
func (e *Engine) AddUser(handle string) error {
	if handle == "" {
		return fmt.Errorf("%w: empty user handle", ErrBadConfig)
	}
	e.dirMu.Lock()
	d := e.dir.Load()
	if _, dup := d.users[handle]; dup {
		e.dirMu.Unlock()
		return fmt.Errorf("%w: user %q", ErrDuplicate, handle)
	}
	id := feed.UserID(len(d.names))
	nd := d.clone()
	nd.users[handle] = id
	nd.names = append(nd.names, handle)
	e.dir.Store(nd)
	e.dirMu.Unlock()

	e.graph.AddUser(id)
	sh := e.shardOf(id)
	sh.mu.Lock()
	sh.eng.AddUser(id)
	sh.mu.Unlock()
	return nil
}

func (e *Engine) lookupUser(handle string) (feed.UserID, error) {
	return e.dir.Load().lookup(handle)
}

// Follow makes follower receive followee's posts.
func (e *Engine) Follow(follower, followee string) error {
	fid, err := e.lookupUser(follower)
	if err != nil {
		return err
	}
	pid, err := e.lookupUser(followee)
	if err != nil {
		return err
	}
	return e.graph.Follow(fid, pid)
}

// Unfollow removes a follow edge.
func (e *Engine) Unfollow(follower, followee string) error {
	fid, err := e.lookupUser(follower)
	if err != nil {
		return err
	}
	pid, err := e.lookupUser(followee)
	if err != nil {
		return err
	}
	return e.graph.Unfollow(fid, pid)
}

// AddCampaign registers an ad campaign with a paced budget over a flight
// window.
func (e *Engine) AddCampaign(name string, budget float64, start, end time.Time) error {
	c, err := adstore.NewCampaign(name, budget, start, end)
	if err != nil {
		return err
	}
	if err := e.store.AddCampaign(c); err != nil {
		if errors.Is(err, adstore.ErrDuplicateCampaign) {
			return fmt.Errorf("%w: campaign %q", ErrDuplicate, name)
		}
		return err
	}
	return nil
}

// AddAd validates and registers an advertisement.
func (e *Engine) AddAd(ad Ad) error {
	if ad.ID == "" {
		return fmt.Errorf("%w: empty ad ID", ErrBadConfig)
	}
	vec := e.vectorize(ad.Text)
	if len(vec) == 0 {
		return fmt.Errorf("caar: ad %q has no indexable keywords in %q", ad.ID, ad.Text)
	}
	slots := timeslot.AllSlots
	if len(ad.Slots) > 0 {
		slots = 0
		for _, s := range ad.Slots {
			sl, ok := s.internal()
			if !ok {
				return fmt.Errorf("%w: unknown slot %q", ErrBadConfig, s)
			}
			slots |= timeslot.NewSet(sl)
		}
	}
	internal := &adstore.Ad{
		Campaign: ad.Campaign,
		Vec:      vec,
		Slots:    slots,
		Bid:      ad.Bid,
	}
	if ad.Target == nil {
		internal.Global = true
	} else {
		internal.Target = geo.Circle{
			Center:   geo.Point{Lat: ad.Target.Lat, Lng: ad.Target.Lng},
			RadiusKm: ad.Target.RadiusKm,
		}
	}

	var err error
	if internal.ID, err = e.mapAd(ad.ID, ad.Campaign); err != nil {
		return err
	}

	if err := internal.Validate(); err != nil {
		e.unmapAd(ad.ID, internal.ID)
		return err
	}
	if err := e.store.Add(internal); err != nil {
		e.unmapAd(ad.ID, internal.ID)
		if errors.Is(err, adstore.ErrUnknownCampaign) {
			return fmt.Errorf("%w: %q (ad %q)", ErrUnknownCampaign, ad.Campaign, ad.ID)
		}
		return err
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.eng.RegisterAd(internal)
		sh.mu.Unlock()
	}
	return nil
}

// mapAd reserves the next internal ID for an external ad name and publishes
// the mapping in a new directory snapshot. The name must be free.
func (e *Engine) mapAd(name, campaign string) (adstore.AdID, error) {
	e.dirMu.Lock()
	defer e.dirMu.Unlock()
	d := e.dir.Load()
	if _, dup := d.adIDs[name]; dup {
		return 0, fmt.Errorf("%w: ad %q", ErrDuplicate, name)
	}
	id := e.nextAd
	e.nextAd++
	e.dir.Store(d.withAd(name, id, campaign))
	return id, nil
}

func (e *Engine) unmapAd(name string, id adstore.AdID) {
	e.dirMu.Lock()
	e.dir.Store(e.dir.Load().withoutAd(name, id))
	e.dirMu.Unlock()
}

// RemoveAd withdraws an advertisement. The directory snapshot without the
// ad is published *before* the store and shard indexes are torn down: the
// moment RemoveAd commits, no in-flight recommend can resolve the name in
// toRecommendations, so a withdrawn ad is never served even while its
// index entries are still being cleaned up. (The reverse order — the seed
// behavior — let a concurrent recommend serve an ad that RemoveAd had
// already deleted from the store.)
func (e *Engine) RemoveAd(id string) error {
	e.dirMu.Lock()
	d := e.dir.Load()
	internalID, ok := d.adIDs[id]
	if !ok {
		e.dirMu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownAd, id)
	}
	campaign := d.ads[internalID].campaign
	e.dir.Store(d.withoutAd(id, internalID))
	e.dirMu.Unlock()

	if err := e.store.Remove(internalID); err != nil {
		// Roll the unmap back so the directory and the store stay
		// consistent: the ad is still live.
		e.dirMu.Lock()
		e.dir.Store(e.dir.Load().withAd(id, internalID, campaign))
		e.dirMu.Unlock()
		return err
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.eng.UnregisterAd(internalID)
		sh.mu.Unlock()
	}
	return nil
}

// CheckIn updates a user's location context.
func (e *Engine) CheckIn(user string, lat, lng float64, at time.Time) error {
	uid, err := e.lookupUser(user)
	if err != nil {
		return err
	}
	sh := e.shardOf(uid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.eng.CheckIn(uid, geo.Point{Lat: lat, Lng: lng}, at); err != nil {
		return err
	}
	e.checkIns.Add(1)
	return nil
}

// Post publishes a message: the text is semantically processed once and the
// message fans out to the author's followers (and the author's own feed).
// With Shards > 1, the fan-out is processed in parallel across shards.
func (e *Engine) Post(author, text string, at time.Time) error {
	uid, err := e.lookupUser(author)
	if err != nil {
		return err
	}
	msg := feed.Message{
		ID:     feed.MessageID(e.msgSeq.Add(1)),
		Author: uid,
		Time:   at,
		Vec:    e.vectorize(text),
	}
	e.trends.observe(timeslot.Of(at), msg.Vec)
	for term := range msg.Vec {
		e.hot.RecordKey(hotkey.DimTerms, uint64(term), 1)
	}
	followers := e.graph.Followers(uid)
	all := make([]feed.UserID, 0, len(followers)+1)
	all = append(all, uid) // the author sees their own post
	all = append(all, followers...)
	return e.deliver(msg, all, at)
}

func (e *Engine) deliver(msg feed.Message, all []feed.UserID, at time.Time) error {
	// One directory snapshot serves the whole fan-out: every continuous
	// recommendation emitted below resolves names against the same view.
	d := e.dir.Load()
	// Group followers by shard.
	groups := make([][]feed.UserID, len(e.shards))
	for _, u := range all {
		si := int(u) % len(e.shards)
		groups[si] = append(groups[si], u)
	}

	var (
		wg       sync.WaitGroup
		firstErr error
		errMu    sync.Mutex
	)
	for si, group := range groups {
		if len(group) == 0 {
			continue
		}
		run := func(si int, group []feed.UserID) {
			sh := e.shards[si]
			sh.mu.Lock() //caarlint:allow readpathlock per-shard core lock is the designed serialization point
			defer sh.mu.Unlock()
			if err := sh.eng.Deliver(msg, group); err != nil {
				errMu.Lock() //caarlint:allow readpathlock first-error collection off the per-request fast path
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			if e.cfg.ContinuousK > 0 {
				for _, u := range group {
					recs, err := sh.eng.TopAds(u, e.cfg.ContinuousK, at)
					if err != nil {
						e.obsm.continuousErrors.Inc()
						continue
					}
					e.cfg.OnRecommend(d.userName(u), e.toRecommendations(d, recs))
				}
			}
		}
		if len(e.shards) == 1 {
			run(si, group)
		} else {
			wg.Add(1)
			go func(si int, group []feed.UserID) {
				defer wg.Done()
				run(si, group)
			}(si, group)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Fan-out cost telemetry: the author is charged one unit per feed
	// window written. Lock-free enqueue; nil-safe no-op when disabled.
	e.hot.RecordKey(hotkey.DimPosters, uint64(msg.Author), uint64(len(all)))
	e.postsDelivered.Add(1)
	return nil
}

// Recommend returns the top-k ads for a user at the given time.
func (e *Engine) Recommend(user string, k int, at time.Time) ([]Recommendation, error) {
	recs, _, err := e.recommend(user, k, at, ServingPolicy{}, TraceRequest{})
	return recs, err
}

// recommend is the unified serving pipeline behind Recommend,
// RecommendWithPolicy and RecommendTraced: lookup → (shard-lock wait) →
// core ranking (retrieve/score/topk, recorded by the shard engine) →
// result mapping → policy filtering. Every stage lands in the per-stage
// latency histograms — the policy stage too, even with a zero policy, so
// each query touches the whole stage family and the stage counts stay
// mutually comparable. When a tracer is configured (or the request forces
// an explanation) the same stage boundaries also feed the request's flight
// record; with tracing off, tr stays nil and the extra cost is one nil
// check per stage.
func (e *Engine) recommend(user string, k int, at time.Time, policy ServingPolicy, treq TraceRequest) ([]Recommendation, *trace.Trace, error) {
	start := time.Now()
	// Serving-path latency fault: disarmed this is one atomic load. The soak
	// and capture-smoke harnesses arm it (CAAR_DELAYS=serve.recommend:5ms) to
	// verify the SLO watchdog trips and the resulting capture bundle's CPU
	// profile attributes the stall to the injected site.
	faultinject.DelayPoint("serve.recommend")
	tr := e.beginTrace(treq, user, k, at, start)
	// One atomic load pins the name-resolution view for the whole request;
	// no stage below takes a global lock.
	d := e.dir.Load()
	uid, err := d.lookup(user)
	if err != nil {
		e.obsm.recommendErrors.Inc()
		return nil, e.finishTrace(tr, time.Since(start), err), err
	}
	if k < 1 {
		e.obsm.recommendErrors.Inc()
		err := fmt.Errorf("%w: k=%d", ErrBadConfig, k)
		return nil, e.finishTrace(tr, time.Since(start), err), err
	}
	// Hot-key telemetry: one lock-free bounded-queue enqueue (nil-safe
	// no-op when disabled).
	e.hot.RecordKey(hotkey.DimUsers, uint64(uid), 1)
	span := e.obsm.stage(e.obsm.stageLookup, start)
	if tr != nil {
		tr.AddSpan("lookup", span.Sub(start), 1, 1)
	}

	fetch := k
	if policy.enabled() {
		fetch = k * policy.overfetch()
	}
	sh := e.shardOf(uid)
	sh.mu.Lock() //caarlint:allow readpathlock per-shard core lock is the designed serialization point
	locked := time.Now()
	e.obsm.lockWaitSeconds.ObserveDuration(locked.Sub(span))
	if tr != nil {
		tr.Shard = int(uid) % len(e.shards)
		tr.LockWaitSeconds = locked.Sub(span).Seconds()
		sh.sink.tr = tr
	}
	scored, err := sh.eng.TopAds(uid, fetch, at)
	if tr != nil {
		sh.sink.tr = nil
	}
	sh.mu.Unlock()
	if err != nil {
		e.obsm.recommendErrors.Inc()
		return nil, e.finishTrace(tr, time.Since(start), err), err
	}

	span = time.Now()
	recs := e.toRecommendations(d, scored)
	mapped := e.obsm.stage(e.obsm.stageMap, span)
	if tr != nil {
		tr.AddSpan("map", mapped.Sub(span), len(scored), len(recs))
	}
	out := e.applyPolicy(d, user, k, at, policy, recs, tr)
	done := e.obsm.stage(e.obsm.stagePolicy, mapped)
	if tr != nil {
		tr.AddSpan("policy", done.Sub(mapped), len(recs), len(out))
		for _, rec := range out {
			tr.AddAd(trace.AdScore{AdID: rec.AdID, Score: rec.Score, Text: rec.Text, Geo: rec.Geo, Bid: rec.Bid})
		}
	}

	elapsed := time.Since(start)
	e.obsm.recommendSeconds.ObserveDuration(elapsed)
	e.obsm.recommends.Inc()
	return out, e.finishTrace(tr, elapsed, nil), nil
}

// ServeImpression bills one impression of an ad against its campaign's
// paced budget. It reports whether the impression may be shown; false means
// the campaign is out of (released) budget.
func (e *Engine) ServeImpression(adID string, at time.Time) (bool, error) {
	d := e.dir.Load()
	internalID, ok := d.adIDs[adID]
	if !ok {
		e.obsm.impressions.With("error").Inc()
		return false, fmt.Errorf("%w: %q", ErrUnknownAd, adID)
	}
	served, err := e.store.ChargeImpression(internalID, at)
	switch {
	case err != nil:
		e.obsm.impressions.With("error").Inc()
	case served:
		e.obsm.impressions.With("billed").Inc()
		// Spend telemetry per campaign (per ad name for campaign-less
		// ads): lock-free enqueue against the directory snapshot already
		// loaded above.
		ref := d.ads[internalID]
		name := ref.campaign
		if name == "" {
			name = ref.name
		}
		e.hot.Record(hotkey.DimCampaigns, name, 1)
	default:
		e.obsm.impressions.With("budget_exhausted").Inc()
	}
	return served, err
}

// toRecommendations maps core results to the public type using the
// caller's directory snapshot — no locks, no lookups beyond the map reads.
func (e *Engine) toRecommendations(d *directory, scored []core.Scored) []Recommendation {
	out := make([]Recommendation, 0, len(scored))
	for _, s := range scored {
		ref, ok := d.ads[s.Ad]
		if !ok {
			continue // withdrawn concurrently
		}
		out = append(out, Recommendation{
			AdID:  ref.name,
			Score: s.Score,
			Text:  s.Text,
			Geo:   s.Geo,
			Bid:   s.Bid,
		})
	}
	return out
}

// Stats returns a monitoring snapshot.
func (e *Engine) Stats() Stats {
	st := Stats{
		Ads:            e.store.Len(),
		FollowEdges:    e.graph.Edges(),
		PostsDelivered: e.postsDelivered.Load(),
		CheckIns:       e.checkIns.Load(),
		Shards:         len(e.shards),
	}
	st.Users = len(e.dir.Load().users)
	for _, sh := range e.shards {
		sh.mu.Lock()
		if c, ok := sh.eng.(*core.CAP); ok {
			st.CachedMessages += c.CachedMessages()
			st.CandidateBufferEntries += c.TotalBufferEntries()
		}
		sh.mu.Unlock()
	}
	return st
}
