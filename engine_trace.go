package caar

import (
	"time"

	"caar/obs"
	"caar/obs/trace"
)

// Request-scoped tracing and score explainability: the engine-side half of
// the flight recorder. The recommend pipeline (engine.go) builds a
// trace.Trace per recorded request; this file holds the public API and the
// begin/finish glue that decides when a trace exists, when it is kept, and
// how a kept trace links back into the aggregate stage histograms
// (exemplars).

// TraceRequest carries per-request tracing directives through the
// recommend pipeline. The zero value is the common case: trace only if a
// tracer is configured, under its sampling policy.
type TraceRequest struct {
	// ID is adopted as the trace ID — the serving layer passes the request's
	// X-Request-Id so access-log lines, slow-request logs and stored traces
	// all correlate on one identifier. Empty mints a fresh ID.
	ID string
	// Explain forces the trace to be captured and returned even when head
	// sampling would drop it, and even when no trace store is configured
	// (the trace is then returned without being retained).
	Explain bool
}

// Tracer returns the trace store the engine records into (Config.Tracer),
// or nil when request tracing is disabled.
func (e *Engine) Tracer() *trace.Store { return e.tracer }

// RecommendTraced is Recommend with the serving policy and flight recorder
// exposed: it returns the recommendations plus the request's trace when the
// trace was captured (head-sampled, slow, errored, or forced by
// treq.Explain), nil otherwise. The returned trace carries one span per
// pipeline stage with candidate in/out counts, the additive score
// decomposition of every returned ad, and any policy drop decisions.
func (e *Engine) RecommendTraced(user string, k int, at time.Time, policy ServingPolicy, treq TraceRequest) ([]Recommendation, *trace.Trace, error) {
	return e.recommend(user, k, at, policy, treq)
}

// beginTrace starts the request's flight record, or returns nil when
// neither a tracer nor an explain request asks for one — the hot path's
// only tracing cost. The head-sampling decision is drawn here (it must
// advance per request, not per capture) and consumed by Store.Add.
func (e *Engine) beginTrace(treq TraceRequest, user string, k int, at, start time.Time) *trace.Trace {
	if e.tracer == nil && !treq.Explain {
		return nil
	}
	tr := trace.New(treq.ID, user, k, at, start)
	tr.Forced = treq.Explain
	if e.tracer != nil {
		tr.HeadSampled = e.tracer.SampleNext()
	}
	tr.Algorithm = string(e.Algorithm())
	return tr
}

// finishTrace seals tr and submits it to the store, returning the trace
// when it was captured (or forced without a store) and nil otherwise. A
// kept trace is also attached as an exemplar to the stage and end-to-end
// latency histograms, so a histogram spike links to a concrete trace ID.
func (e *Engine) finishTrace(tr *trace.Trace, elapsed time.Duration, err error) *trace.Trace {
	if tr == nil {
		return nil
	}
	tr.Finish(elapsed, err)
	kept := false
	switch {
	case e.tracer != nil:
		kept = e.tracer.Add(tr)
	case tr.Forced:
		tr.CaptureReason = trace.ReasonExplain
		kept = true
	}
	if !kept {
		return nil
	}
	e.obsm.attachExemplars(tr)
	return tr
}

// traceStages lists the pipeline stages in order, as they appear in spans,
// histogram labels and the attrition funnel.
var traceStages = []string{"lookup", "retrieve", "score", "topk", "map", "policy"}

// StageExemplars returns, per pipeline stage (plus "recommend" for the
// end-to-end latency), the trace IDs attached to the stage histogram's
// buckets — the bridge from a latency spike on a dashboard to a captured
// trace in /v1/traces/{id}. Stages with no captured traces are omitted.
func (e *Engine) StageExemplars() map[string][]obs.BucketExemplar {
	out := make(map[string][]obs.BucketExemplar, len(traceStages)+1)
	for _, stage := range traceStages {
		if h := e.obsm.stageHist(stage); h != nil {
			if ex := h.Exemplars(); len(ex) > 0 {
				out[stage] = ex
			}
		}
	}
	if ex := e.obsm.recommendSeconds.Exemplars(); len(ex) > 0 {
		out["recommend"] = ex
	}
	return out
}
